#include "trace/merge.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <string>

#include "trace/mapped_source.hpp"
#include "trace/record_source.hpp"
#include "trace/spill_writer.hpp"

namespace bpsio::trace {

std::vector<IoRecord> merge_traces(
    const std::vector<std::vector<IoRecord>>& traces,
    const MergeOptions& options) {
  std::vector<IoRecord> out;
  std::size_t total = 0;
  for (const auto& t : traces) total += t.size();
  out.reserve(total);

  for (std::size_t src = 0; src < traces.size(); ++src) {
    std::int64_t shift = 0;
    if (options.alignment == TimeAlignment::align_starts &&
        !traces[src].empty()) {
      std::int64_t earliest = std::numeric_limits<std::int64_t>::max();
      for (const auto& r : traces[src]) earliest = std::min(earliest, r.start_ns);
      shift = -earliest;
    }
    for (IoRecord r : traces[src]) {
      if (options.pid_stride > 0) {
        r.pid = static_cast<std::uint32_t>(src + 1) * options.pid_stride + r.pid;
      }
      r.start_ns += shift;
      r.end_ns += shift;
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(), [](const IoRecord& a, const IoRecord& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.end_ns < b.end_ns;
  });
  return out;
}

std::vector<IoRecord> merge_traces_parallel(
    const std::vector<std::vector<IoRecord>>& traces, ThreadPool& pool,
    const MergeOptions& options) {
  // Per-source segment offsets into the flat output.
  std::vector<std::size_t> offsets(traces.size() + 1, 0);
  for (std::size_t src = 0; src < traces.size(); ++src) {
    offsets[src + 1] = offsets[src] + traces[src].size();
  }
  std::vector<IoRecord> flat(offsets.back());

  // Stage 1 — one task per source: align, remap, and stable-sort its segment.
  // stable_sort keeps original record order inside (start, end) ties, which
  // combined with the source-index tiebreak below makes the whole output
  // deterministic run-to-run and independent of pool width.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(traces.size());
  for (std::size_t src = 0; src < traces.size(); ++src) {
    tasks.push_back([&, src] {
      const auto& in = traces[src];
      std::int64_t shift = 0;
      if (options.alignment == TimeAlignment::align_starts && !in.empty()) {
        std::int64_t earliest = std::numeric_limits<std::int64_t>::max();
        for (const auto& r : in) earliest = std::min(earliest, r.start_ns);
        shift = -earliest;
      }
      IoRecord* out = flat.data() + offsets[src];
      for (std::size_t i = 0; i < in.size(); ++i) {
        IoRecord r = in[i];
        if (options.pid_stride > 0) {
          r.pid =
              static_cast<std::uint32_t>(src + 1) * options.pid_stride + r.pid;
        }
        r.start_ns += shift;
        r.end_ns += shift;
        out[i] = r;
      }
      std::stable_sort(out, out + in.size(),
                       [](const IoRecord& a, const IoRecord& b) {
                         if (a.start_ns != b.start_ns)
                           return a.start_ns < b.start_ns;
                         return a.end_ns < b.end_ns;
                       });
    });
  }
  pool.run_all(std::move(tasks));

  // Stage 2 — k-way merge of the sorted segments (source count is small,
  // so a linear head scan suffices). Lower source index wins ties.
  std::vector<IoRecord> out;
  out.reserve(flat.size());
  std::vector<std::size_t> heads(traces.size());
  for (std::size_t src = 0; src < traces.size(); ++src) {
    heads[src] = offsets[src];
  }
  for (std::size_t emitted = 0; emitted < flat.size(); ++emitted) {
    std::size_t best = traces.size();
    for (std::size_t src = 0; src < traces.size(); ++src) {
      if (heads[src] == offsets[src + 1]) continue;
      if (best == traces.size()) {
        best = src;
        continue;
      }
      const IoRecord& a = flat[heads[src]];
      const IoRecord& b = flat[heads[best]];
      if (a.start_ns < b.start_ns ||
          (a.start_ns == b.start_ns && a.end_ns < b.end_ns)) {
        best = src;
      }
    }
    out.push_back(flat[heads[best]++]);
  }
  return out;
}

std::unique_ptr<RecordSource> merged_record_source(
    const std::vector<std::vector<IoRecord>>& traces,
    const MergeOptions& options) {
  // Each child stable-sorts a copy of its trace; the shift/remap transform
  // happens inside MergedSource and cannot reorder records (uniform shift,
  // pid not part of the comparator), so child streams match the batch
  // merge's per-source stage record for record.
  std::vector<std::unique_ptr<RecordSource>> children;
  children.reserve(traces.size());
  for (const auto& t : traces) {
    children.push_back(std::make_unique<VectorSource>(VectorSource::sorted(t)));
  }
  return std::make_unique<MergedSource>(std::move(children), options);
}

std::vector<IoRecord> shift_trace(std::vector<IoRecord> records,
                                  std::int64_t delta_ns) {
  for (auto& r : records) {
    r.start_ns += delta_ns;
    r.end_ns += delta_ns;
  }
  return records;
}

Status merge_trace_files(std::vector<std::string> paths,
                         const std::string& out_path) {
  std::sort(paths.begin(), paths.end());
  std::vector<std::unique_ptr<RecordSource>> children;
  children.reserve(paths.size());
  for (const std::string& path : paths) {
    auto source = open_trace_source(path);
    if (!source->status().ok()) {
      return Error{Errc::io_error, "merge cannot read spool " + path + ": " +
                                       source->status().to_string()};
    }
    children.push_back(std::move(source));
  }
  MergeOptions options;
  options.alignment = TimeAlignment::keep;
  options.pid_stride = 0;  // spooled records carry real, distinct pids
  MergedSource merged(std::move(children), options);

  SpillWriter out(out_path);
  if (!out.ok()) {
    return Error{Errc::io_error, "merge cannot open output " + out_path};
  }
  for (;;) {
    const std::span<const IoRecord> chunk = merged.next_chunk();
    if (chunk.empty()) break;
    out.append(chunk);
  }
  if (!merged.status().ok()) {
    return Error{Errc::io_error,
                 "spool merge failed: " + merged.status().to_string()};
  }
  const Status closed = out.close();
  if (!closed.ok()) {
    return Error{Errc::io_error,
                 "merge close failed for " + out_path + ": " +
                     closed.to_string()};
  }
  return {};
}

}  // namespace bpsio::trace
