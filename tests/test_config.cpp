#include <gtest/gtest.h>

#include "common/config.hpp"

namespace bpsio {
namespace {

Config parse(std::initializer_list<const char*> args) {
  std::vector<const char*> v(args);
  return Config::from_args(static_cast<int>(v.size()), v.data());
}

TEST(Config, ParsesKeyValueAndFlags) {
  const auto cfg = parse({"--scale=0.5", "--verbose", "input.trace"});
  EXPECT_DOUBLE_EQ(cfg.get_double("scale", 1.0), 0.5);
  EXPECT_TRUE(cfg.get_bool("verbose", false));
  ASSERT_EQ(cfg.positional().size(), 1u);
  EXPECT_EQ(cfg.positional()[0], "input.trace");
}

TEST(Config, DefaultsWhenMissing) {
  const Config cfg;
  EXPECT_EQ(cfg.get_int("n", 7), 7);
  EXPECT_EQ(cfg.get_string("s", "x"), "x");
  EXPECT_FALSE(cfg.get_bool("b", false));
  EXPECT_EQ(cfg.get_bytes("sz", 512), 512u);
  EXPECT_FALSE(cfg.has("anything"));
}

TEST(Config, MalformedNumbersFallBack) {
  const auto cfg = parse({"--n=abc", "--d=1.5x"});
  EXPECT_EQ(cfg.get_int("n", 3), 3);
  EXPECT_DOUBLE_EQ(cfg.get_double("d", 2.0), 2.0);
}

TEST(Config, BoolSpellings) {
  const auto cfg = parse({"--a=1", "--b=true", "--c=off", "--d=no", "--e=maybe"});
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_FALSE(cfg.get_bool("c", true));
  EXPECT_FALSE(cfg.get_bool("d", true));
  EXPECT_TRUE(cfg.get_bool("e", true));  // unknown -> default
}

TEST(Config, ByteSuffixes) {
  EXPECT_EQ(Config::parse_bytes("512"), 512u);
  EXPECT_EQ(Config::parse_bytes("4k"), 4096u);
  EXPECT_EQ(Config::parse_bytes("4K"), 4096u);
  EXPECT_EQ(Config::parse_bytes("4KiB"), 4096u);
  EXPECT_EQ(Config::parse_bytes("8M"), 8u * kMiB);
  EXPECT_EQ(Config::parse_bytes("2g"), 2u * kGiB);
  EXPECT_EQ(Config::parse_bytes("1T"), kTiB);
  EXPECT_EQ(Config::parse_bytes("1.5k"), 1536u);
  EXPECT_FALSE(Config::parse_bytes("").has_value());
  EXPECT_FALSE(Config::parse_bytes("12q").has_value());
  EXPECT_FALSE(Config::parse_bytes("-5k").has_value());
}

TEST(Config, GetBytesUsesSuffixes) {
  const auto cfg = parse({"--record=64k", "--file=1G"});
  EXPECT_EQ(cfg.get_bytes("record", 0), 64u * kKiB);
  EXPECT_EQ(cfg.get_bytes("file", 0), kGiB);
}

TEST(Config, FromString) {
  const auto cfg = Config::from_string("a=1 b=two\nflag");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_string("b", ""), "two");
  EXPECT_TRUE(cfg.get_bool("flag", false));
}

TEST(Config, LastValueWins) {
  const auto cfg = parse({"--x=1", "--x=2"});
  EXPECT_EQ(cfg.get_int("x", 0), 2);
}

}  // namespace
}  // namespace bpsio
