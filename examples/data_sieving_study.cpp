// Set-4 style exploration: noncontiguous I/O with data sieving (the Hpio
// scenario), sweeping the region spacing and comparing sieving on/off —
// the experiment where bandwidth ranks systems backwards and BPS does not.
//
//   build/examples/data_sieving_study [--regions=16384] [--procs=4]
//                                     [--servers=4] [--size=256]
#include <cstdio>

#include "common/config.hpp"
#include "common/format.hpp"
#include "core/experiment.hpp"
#include "core/presets.hpp"
#include "workload/registry.hpp"

using namespace bpsio;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc - 1, argv + 1);
  const auto regions = static_cast<std::uint64_t>(cfg.get_int("regions", 16384));
  const auto procs = static_cast<std::uint32_t>(cfg.get_int("procs", 4));
  const auto servers = static_cast<std::uint32_t>(cfg.get_int("servers", 4));
  const Bytes region_size = cfg.get_bytes("size", 256);

  std::printf("Hpio-style noncontiguous read: %llu regions x %s, %u procs, "
              "%u HDD servers\n\n",
              static_cast<unsigned long long>(regions),
              human_bytes(region_size).c_str(), procs, servers);

  TextTable table({"spacing", "mode", "exec(s)", "BW(MB/s)", "BPS",
                   "moved/app"});
  for (const Bytes spacing : {Bytes{8}, Bytes{64}, Bytes{512}, Bytes{4096}}) {
    for (const bool sieving : {true, false}) {
      core::RunSpec spec;
      spec.label = "hpio";
      spec.testbed = [servers, procs](std::uint64_t seed) {
        return core::pvfs_testbed(servers, pfs::DeviceKind::hdd, procs, seed);
      };
      spec.workload = [&]() -> std::unique_ptr<workload::Workload> {
        workload::HpioConfig wl;
        wl.region_count = regions;
        wl.region_size = region_size;
        wl.region_spacing = spacing;
        wl.processes = procs;
        wl.sieving.enabled = sieving;
        wl.regions_per_call = 8192;
        return workload::make_workload(wl);
      };
      const auto s = core::run_once(spec, 42);
      table.add_row({std::to_string(spacing) + "B",
                     sieving ? "sieving" : "naive",
                     fmt_double(s.exec_time_s, 3),
                     fmt_double(s.bandwidth_bps / 1e6, 1),
                     fmt_double(s.bps, 0),
                     fmt_double(static_cast<double>(s.moved_bytes) /
                                    static_cast<double>(s.app_bytes),
                                2) + "x"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Read it columnwise:\n"
      "  * sieving wins execution time at every spacing (fewer, larger\n"
      "    transfers), and BPS agrees with that ranking;\n"
      "  * bandwidth REWARDS the extra hole traffic (moved/app > 1) — at\n"
      "    larger spacings the slower-per-useful-byte configuration posts\n"
      "    the higher BW. That is the Figure-12 inversion.\n");
  return 0;
}
