// Harness bench: agent ingest — decoded BPSF frames into MetricAggregator.
//
// This is the daemon's end-to-end hot path after the zero-copy substrate:
// FrameDecoder hands each completed frame to the sink as a
// std::span<const IoRecord> over the connection buffer, and the sink feeds
// the whole span to MetricAggregator::add(span) (one pid-run grouping, one
// bulk window update per run). The measured workload is the wire stream
// record_shipper produces: one pid per frame, frames cycling over 16 pids.
//
// Each sample decodes the pre-encoded stream and ingests it into a fresh
// aggregator. A second harness pass measures the historical per-record
// baseline (decode to a vector, then add(record) in a loop) on the same
// wire bytes; the reported BENCH_agent_ingest.json carries
// `speedup_vs_per_record`, and both paths must land on identical aggregator
// state (csv_snapshot equality) or the bench fails.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "agent/aggregator.hpp"
#include "bench/bench_cli.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "trace/frame.hpp"
#include "trace/io_record.hpp"

using namespace bpsio;

namespace {

constexpr std::size_t kRecordsPerFrame = 1024;  // one client flush per frame
constexpr std::size_t kReadChunk = 64 * 1024;  // typical socket read size
constexpr std::uint32_t kPids = 16;
// Per-client inter-access gap and access length, in ns. Sparse short
// accesses: the union of 16 such streams is patchy, so the global window
// holds hundreds of disjoint busy intervals — the regime the batched
// interval splice exists for (a per-record middle insert memmoves the tail
// of the flat interval vector on every single record).
constexpr std::uint64_t kGapSpreadNs = 8000;
constexpr std::uint64_t kLenSpreadNs = 120;
// Window covering ~2 frame rounds: old enough that nothing from the
// round-robin interleave is spuriously expired, short enough to keep the
// interval store at realistic size.
constexpr double kWindowMs =
    2 * kRecordsPerFrame * (kGapSpreadNs / 2) * kPids / 1e6;

// One pid per frame, frames round-robin over 16 clients with independent
// clocks: the shape a multi-client daemon actually sees. Each client ships
// its own spill batches, so consecutive frames cover overlapping time
// ranges — the global window receives heavily out-of-order record batches.
std::vector<char> encode_workload(std::uint64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<trace::IoRecord> frame;
  frame.reserve(kRecordsPerFrame);
  std::vector<char> wire;
  wire.reserve(n * sizeof(trace::IoRecord) + (n / kRecordsPerFrame + 1) * 8);
  std::int64_t clocks[kPids] = {};
  std::uint32_t frame_index = 0;
  for (std::uint64_t emitted = 0; emitted < n;) {
    const std::uint32_t pid = frame_index % kPids + 1;
    std::int64_t& t = clocks[pid - 1];
    const std::size_t take =
        std::min<std::uint64_t>(kRecordsPerFrame, n - emitted);
    for (std::size_t i = 0; i < take; ++i) {
      t += static_cast<std::int64_t>(rng.uniform_u64(kGapSpreadNs)) + 1;
      const auto len =
          static_cast<std::int64_t>(rng.uniform_u64(kLenSpreadNs)) + 1;
      frame.push_back(trace::make_record(pid, rng.uniform_u64(64) + 1,
                                         SimTime(t), SimTime(t + len)));
    }
    trace::encode_frame(frame, wire);
    frame.clear();
    emitted += take;
    ++frame_index;
  }
  return wire;
}

agent::MetricAggregator make_aggregator() {
  return agent::MetricAggregator(SimDuration::from_ms(kWindowMs), 512);
}

void feed_stream(const std::vector<char>& wire, trace::FrameDecoder& decoder,
                 const trace::FrameDecoder::FrameSink& sink) {
  for (std::size_t off = 0; off < wire.size(); off += kReadChunk) {
    const std::size_t len = std::min(kReadChunk, wire.size() - off);
    (void)decoder.feed(wire.data() + off, len, sink);
  }
  BPSIO_CHECK(decoder.status().ok(), "decoder poisoned mid-bench");
}

}  // namespace

int main(int argc, char** argv) {
  bench::CommonBenchArgs args;
  cli::ArgParser parser("bench_agent_ingest",
                        "Daemon ingest throughput: BPSF frames through the "
                        "zero-copy decoder sink into MetricAggregator, vs "
                        "the per-record baseline.");
  bench::register_common_flags(parser, &args, /*with_threads=*/false);
  std::vector<std::string> positionals;
  switch (parser.parse(argc, argv, positionals)) {
    case cli::ArgParser::Outcome::help: return 0;
    case cli::ArgParser::Outcome::error: return 2;
    case cli::ArgParser::Outcome::ok: break;
  }

  const std::uint64_t n = bench::resolve_records(args, 200'000, 4'000'000);
  const auto wire = encode_workload(n, static_cast<std::uint64_t>(args.seed));
  std::printf("=== agent ingest: %llu records, %u pids, %.1f MiB on the "
              "wire, seed=%llu ===\n",
              static_cast<unsigned long long>(n), kPids,
              static_cast<double>(wire.size()) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(args.seed));

  // Equality self-check before any timing: the span path and the per-record
  // path must produce byte-identical exposition output.
  std::string batched_csv;
  {
    agent::MetricAggregator batched = make_aggregator();
    trace::FrameDecoder decoder;
    const trace::FrameDecoder::FrameSink sink =
        [&batched](std::span<const trace::IoRecord> frame) {
          batched.add(frame);
        };
    feed_stream(wire, decoder, sink);
    BPSIO_CHECK(batched.records_total() == n, "batched ingest lost records");
    batched_csv = batched.csv_snapshot();
  }
  {
    agent::MetricAggregator scalar = make_aggregator();
    trace::FrameDecoder decoder;
    const trace::FrameDecoder::FrameSink sink =
        [&scalar](std::span<const trace::IoRecord> frame) {
          for (const auto& record : frame) scalar.add(record);
        };
    feed_stream(wire, decoder, sink);
    BPSIO_CHECK(scalar.csv_snapshot() == batched_csv,
                "span and per-record ingest disagree");
  }

  // Reported number: the batched span path.
  const auto cfg = bench::make_harness_config("agent_ingest", args);
  const bench::BenchHarness harness(cfg);
  const auto batched_result = harness.run([&] {
    agent::MetricAggregator agg = make_aggregator();
    trace::FrameDecoder decoder;
    const trace::FrameDecoder::FrameSink sink =
        [&agg](std::span<const trace::IoRecord> frame) { agg.add(frame); };
    feed_stream(wire, decoder, sink);
    return static_cast<double>(agg.records_total());
  });

  // Baseline: decode to a scratch vector, then the historical add(record)
  // loop. Measured with the same harness so the speedup compares converged
  // means, but only the batched record is published.
  auto base_cfg = cfg;
  base_cfg.name = "agent_ingest_per_record";
  const bench::BenchHarness base_harness(base_cfg);
  std::vector<trace::IoRecord> scratch;
  scratch.reserve(kRecordsPerFrame);
  const auto baseline_result = base_harness.run([&] {
    agent::MetricAggregator agg = make_aggregator();
    trace::FrameDecoder decoder;
    const trace::FrameDecoder::FrameSink sink =
        [&scratch](std::span<const trace::IoRecord> frame) {
          scratch.insert(scratch.end(), frame.begin(), frame.end());
        };
    for (std::size_t off = 0; off < wire.size(); off += kReadChunk) {
      const std::size_t len = std::min(kReadChunk, wire.size() - off);
      (void)decoder.feed(wire.data() + off, len, sink);
      for (const auto& record : scratch) agg.add(record);
      scratch.clear();
    }
    BPSIO_CHECK(decoder.status().ok(), "decoder poisoned mid-bench");
    return static_cast<double>(agg.records_total());
  });

  const double speedup = baseline_result.est.mean > 0
                             ? batched_result.est.mean / baseline_result.est.mean
                             : 0.0;
  std::printf("  per-record baseline: %.3g records/sec; span path %.2fx\n",
              baseline_result.est.mean, speedup);

  char speedup_str[32];
  std::snprintf(speedup_str, sizeof speedup_str, "%.4f", speedup);
  return bench::report_result(args, cfg, batched_result,
                              {{"records", std::to_string(n)},
                               {"pids", std::to_string(kPids)},
                               {"read_chunk", std::to_string(kReadChunk)},
                               {"speedup_vs_per_record", speedup_str},
                               {"profile", args.profile}});
}
