// MPI-IO middleware: data sieving, list I/O, collective two-phase reads.
// The key invariant throughout: B (recorded blocks) always reflects the
// application-required data, while FS-level moved bytes reflect what the
// optimization actually transferred.
#include <gtest/gtest.h>

#include "device/ram_device.hpp"
#include "fs/local_fs.hpp"
#include "mio/mpi_io.hpp"
#include "sim/simulator.hpp"

namespace bpsio::mio {
namespace {

struct Fixture {
  sim::Simulator sim;
  device::RamDevice dev{sim, device::RamParams{.capacity = 256 * kMiB}};
  fs::LocalFileSystem fs{sim, dev};
  ClientNode node{sim};

  fs::FileHandle make_file(Bytes size) {
    auto h = fs.create("/f", size);
    EXPECT_TRUE(h.ok());
    return *h;
  }
};

TEST(MakeStridedRegions, LayoutAndTotals) {
  const auto regions = make_strided_regions(1000, 4, 256, 8);
  ASSERT_EQ(regions.size(), 4u);
  EXPECT_EQ(regions[0], (Region{1000, 256}));
  EXPECT_EQ(regions[1], (Region{1264, 256}));
  EXPECT_EQ(regions_bytes(regions), 1024u);
}

TEST(MpiIo, ListReadWithSievingReadsHolesToo) {
  Fixture f;
  IoClient client(f.node, f.fs, 1);
  DataSievingConfig sieving;
  sieving.enabled = true;
  sieving.buffer_size = 1 * kMiB;
  MpiIo mpi(client, sieving);

  auto h = f.make_file(8 * kMiB);
  const auto regions = make_strided_regions(0, 1024, 256, 768);  // 1 KiB pitch
  const Bytes useful = regions_bytes(regions);
  fs::IoOutcome out{false, 0};
  mpi.read_list(h, regions, [&](fs::IoOutcome o) { out = o; });
  f.sim.run();
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.bytes, useful);
  // FS moved the full extent (regions + holes), app required only regions.
  EXPECT_GE(f.fs.bytes_moved(), 1024u * 1024);
  EXPECT_EQ(client.trace().size(), 1u);
  EXPECT_EQ(client.trace().records().front().blocks,
            bytes_to_blocks(useful));
}

TEST(MpiIo, ListReadWithoutSievingMovesOnlyUsefulBytes) {
  Fixture f;
  IoClient client(f.node, f.fs, 1);
  DataSievingConfig sieving;
  sieving.enabled = false;
  MpiIo mpi(client, sieving);

  auto h = f.make_file(8 * kMiB);
  const auto regions = make_strided_regions(0, 64, 4096, 4096);
  fs::IoOutcome out{false, 0};
  mpi.read_list(h, regions, [&](fs::IoOutcome o) { out = o; });
  f.sim.run();
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(f.fs.bytes_moved(), 64u * 4096);  // page-aligned regions: exact
  EXPECT_EQ(client.trace().size(), 1u);       // still ONE application access
}

TEST(MpiIo, SievingIsFasterForTinyRegions) {
  auto run_mode = [](bool sieving_on) {
    Fixture f;
    IoClient client(f.node, f.fs, 1);
    DataSievingConfig cfg;
    cfg.enabled = sieving_on;
    MpiIo mpi(client, cfg);
    auto h = f.make_file(8 * kMiB);
    fs::IoOutcome out{false, 0};
    mpi.read_list(h, make_strided_regions(0, 2048, 64, 64),
                  [&](fs::IoOutcome o) { out = o; });
    f.sim.run();
    EXPECT_TRUE(out.ok);
    return f.sim.now().seconds();
  };
  EXPECT_LT(run_mode(true), run_mode(false));
}

TEST(MpiIo, MaxHoleSplitsTheExtent) {
  Fixture f;
  IoClient client(f.node, f.fs, 1);
  DataSievingConfig sieving;
  sieving.enabled = true;
  sieving.max_hole = 1 * kKiB;
  MpiIo mpi(client, sieving);

  auto h = f.make_file(64 * kMiB);
  // Two dense clusters separated by a ~30 MiB hole: sieving must not read
  // the giant gap.
  std::vector<Region> regions = make_strided_regions(0, 16, 4096, 0);
  const auto far = make_strided_regions(32 * kMiB, 16, 4096, 0);
  regions.insert(regions.end(), far.begin(), far.end());
  fs::IoOutcome out{false, 0};
  mpi.read_list(h, regions, [&](fs::IoOutcome o) { out = o; });
  f.sim.run();
  ASSERT_TRUE(out.ok);
  EXPECT_LT(f.fs.bytes_moved(), 1 * kMiB);  // only the two clusters
}

TEST(MpiIo, WriteListFullCoverageSkipsReadModifyWrite) {
  Fixture f;
  IoClient client(f.node, f.fs, 1);
  MpiIo mpi(client);
  auto h = f.make_file(1 * kMiB);
  // Hole-free: contiguous regions covering [0, 256 KiB).
  fs::IoOutcome out{false, 0};
  mpi.write_list(h, make_strided_regions(0, 64, 4096, 0),
                 [&](fs::IoOutcome o) { out = o; });
  f.sim.run();
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(f.dev.stats().bytes_read, 0u);  // no RMW read
  EXPECT_GE(f.dev.stats().bytes_written, 256u * kKiB);
}

TEST(MpiIo, WriteListWithHolesDoesReadModifyWrite) {
  Fixture f;
  IoClient client(f.node, f.fs, 1);
  MpiIo mpi(client);
  auto h = f.make_file(1 * kMiB);
  fs::IoOutcome out{false, 0};
  mpi.write_list(h, make_strided_regions(0, 64, 2048, 2048),
                 [&](fs::IoOutcome o) { out = o; });
  f.sim.run();
  ASSERT_TRUE(out.ok);
  EXPECT_GT(f.dev.stats().bytes_read, 0u);  // sieve buffer read back first
  const auto& r = client.trace().records().front();
  EXPECT_EQ(r.op, trace::IoOpKind::write);
  EXPECT_EQ(r.blocks, bytes_to_blocks(64 * 2048));
}

TEST(MpiIo, EmptyRegionListCompletes) {
  Fixture f;
  IoClient client(f.node, f.fs, 1);
  MpiIo mpi(client);
  auto h = f.make_file(1 * kMiB);
  fs::IoOutcome out{false, 1};
  mpi.read_list(h, {}, [&](fs::IoOutcome o) { out = o; });
  f.sim.run();
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.bytes, 0u);
}

TEST(MpiIo, UnsortedRegionsAreSorted) {
  Fixture f;
  IoClient client(f.node, f.fs, 1);
  MpiIo mpi(client);
  auto h = f.make_file(1 * kMiB);
  std::vector<Region> regions{{8192, 4096}, {0, 4096}, {4096, 4096}};
  fs::IoOutcome out{false, 0};
  mpi.read_list(h, regions, [&](fs::IoOutcome o) { out = o; });
  f.sim.run();
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.bytes, 12288u);
}

TEST(Collective, AllPartiesCompleteWithOneRecordEach) {
  Fixture f;
  const std::uint32_t P = 4;
  std::vector<std::unique_ptr<IoClient>> clients;
  std::vector<std::unique_ptr<MpiIo>> ios;
  CollectiveGroup group(f.sim, P);
  auto h = f.make_file(4 * kMiB);
  int completed = 0;
  for (std::uint32_t p = 0; p < P; ++p) {
    clients.push_back(std::make_unique<IoClient>(f.node, f.fs, p + 1));
    ios.push_back(std::make_unique<MpiIo>(*clients.back()));
  }
  for (std::uint32_t p = 0; p < P; ++p) {
    // Interleaved 64 KiB pieces: proc p takes pieces p, p+P, ...
    std::vector<Region> regions;
    for (Bytes piece = p; piece < 64; piece += P) {
      regions.push_back(Region{piece * 64 * kKiB, 64 * kKiB});
    }
    ios[p]->read_collective(group, h, regions,
                            [&](fs::IoOutcome o) { completed += o.ok; });
  }
  f.sim.run();
  EXPECT_EQ(completed, 4);
  for (auto& c : clients) {
    ASSERT_EQ(c->trace().size(), 1u);
    EXPECT_EQ(c->trace().records().front().blocks,
              bytes_to_blocks(16 * 64 * kKiB));
    EXPECT_TRUE(c->trace().records().front().flags & trace::kIoCollective);
  }
  // The merged request space is the whole 4 MiB, read exactly once.
  EXPECT_EQ(f.fs.bytes_moved(), 4u * kMiB);
}

TEST(Collective, ReadsOnlyRequestedData) {
  Fixture f;
  CollectiveGroup group(f.sim, 2);
  auto h = f.make_file(64 * kMiB);
  IoClient c1(f.node, f.fs, 1), c2(f.node, f.fs, 2);
  MpiIo m1(c1), m2(c2);
  int completed = 0;
  // Two tiny requests very far apart: two-phase must NOT read the gap.
  m1.read_collective(group, h, {Region{0, 4096}},
                     [&](fs::IoOutcome o) { completed += o.ok; });
  m2.read_collective(group, h, {Region{48 * kMiB, 4096}},
                     [&](fs::IoOutcome o) { completed += o.ok; });
  f.sim.run();
  EXPECT_EQ(completed, 2);
  EXPECT_LE(f.fs.bytes_moved(), 16u * kKiB);
}

TEST(Collective, WriteRoundWritesExactlyTheRequestSpace) {
  Fixture f;
  CollectiveGroup group(f.sim, 2);
  auto h = f.make_file(4 * kMiB);
  IoClient c1(f.node, f.fs, 1), c2(f.node, f.fs, 2);
  MpiIo m1(c1), m2(c2);
  int completed = 0;
  // Interleaved 64 KiB pieces covering [0, 1 MiB).
  std::vector<Region> r1, r2;
  for (Bytes piece = 0; piece < 16; ++piece) {
    ((piece % 2) ? r2 : r1).push_back(Region{piece * 64 * kKiB, 64 * kKiB});
  }
  m1.write_collective(group, h, r1,
                      [&](fs::IoOutcome o) { completed += o.ok; });
  m2.write_collective(group, h, r2,
                      [&](fs::IoOutcome o) { completed += o.ok; });
  f.sim.run();
  EXPECT_EQ(completed, 2);
  // No RMW reads, and the merged space written exactly once.
  EXPECT_EQ(f.dev.stats().bytes_read, 0u);
  EXPECT_GE(f.dev.stats().bytes_written, 1u * kMiB);
  EXPECT_LE(f.dev.stats().bytes_written, kMiB + 64 * kKiB);
  ASSERT_EQ(c1.trace().size(), 1u);
  EXPECT_EQ(c1.trace().records().front().op, trace::IoOpKind::write);
  EXPECT_TRUE(c1.trace().records().front().flags & trace::kIoCollective);
  EXPECT_EQ(c1.trace().records().front().blocks,
            bytes_to_blocks(8 * 64 * kKiB));
}

TEST(Collective, WriteExtendsTheFile) {
  Fixture f;
  CollectiveGroup group(f.sim, 1);
  auto h = f.make_file(0);
  IoClient c1(f.node, f.fs, 1);
  MpiIo m1(c1);
  bool ok = false;
  m1.write_collective(group, h, {Region{0, 256 * kKiB}},
                      [&](fs::IoOutcome o) { ok = o.ok; });
  f.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(f.fs.size_of(h).value(), 256u * kKiB);
}

TEST(Collective, GroupReusableAcrossRounds) {
  Fixture f;
  CollectiveGroup group(f.sim, 2);
  auto h = f.make_file(1 * kMiB);
  IoClient c1(f.node, f.fs, 1), c2(f.node, f.fs, 2);
  MpiIo m1(c1), m2(c2);
  int completed = 0;
  for (int round = 0; round < 3; ++round) {
    const Bytes base = static_cast<Bytes>(round) * 128 * kKiB;
    m1.read_collective(group, h, {Region{base, 64 * kKiB}},
                       [&](fs::IoOutcome o) { completed += o.ok; });
    m2.read_collective(group, h, {Region{base + 64 * kKiB, 64 * kKiB}},
                       [&](fs::IoOutcome o) { completed += o.ok; });
    f.sim.run();
  }
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(c1.trace().size(), 3u);
}

}  // namespace
}  // namespace bpsio::mio
