// Ablation: data sieving ON vs OFF (DESIGN.md decision 3 — why the
// middleware sieves, and why its benefit is invisible to bandwidth).
//
// Runs the Hpio pattern at several spacings with sieving enabled and
// disabled. Expected: sieving slashes execution time at small spacings
// (thousands of tiny reads collapse into a few big ones) while *increasing*
// FS-level moved bytes — i.e. bandwidth ranks the slower configuration
// higher. BPS ranks configurations exactly as execution time does.
#include "figure_bench.hpp"
#include "core/presets.hpp"
#include "workload/registry.hpp"

using namespace bpsio;

namespace {

metrics::MetricSample run_hpio(Bytes spacing, bool sieving, double scale,
                               std::uint64_t seed) {
  core::RunSpec spec;
  spec.label = "hpio";
  spec.testbed = [](std::uint64_t s) {
    return core::pvfs_testbed(4, pfs::DeviceKind::hdd, 4, s);
  };
  const auto regions = static_cast<std::uint64_t>(16384 * scale);
  spec.workload = [spacing, sieving, regions]() {
    workload::HpioConfig cfg;
    cfg.region_count = regions;
    cfg.region_size = 256;
    cfg.region_spacing = spacing;
    cfg.processes = 4;
    cfg.sieving.enabled = sieving;
    cfg.regions_per_call = 8192;
    return workload::make_workload(cfg);
  };
  return core::run_once(spec, seed);
}

}  // namespace

int main(int argc, char** argv) {
  const auto d = bench::defaults_from_args(argc, argv);
  std::printf("=== Ablation: data sieving on/off (Hpio, 4 servers) ===\n\n");

  TextTable t({"spacing", "sieving", "exec(s)", "BW(MB/s)", "BPS",
               "moved(MiB)", "speedup"});
  for (const Bytes spacing : {Bytes{8}, Bytes{256}, Bytes{4096}}) {
    const auto off = run_hpio(spacing, false, d.scale, d.base_seed);
    const auto on = run_hpio(spacing, true, d.scale, d.base_seed);
    auto row = [&](const char* mode, const metrics::MetricSample& s,
                   double speedup) {
      t.add_row({std::to_string(spacing) + "B", mode,
                 fmt_double(s.exec_time_s, 3),
                 fmt_double(s.bandwidth_bps / 1e6, 1), fmt_double(s.bps, 0),
                 fmt_double(static_cast<double>(s.moved_bytes) / (1 << 20), 1),
                 speedup > 0 ? fmt_double(speedup, 2) + "x" : std::string("-")});
    };
    row("off", off, 0);
    row("on", on, off.exec_time_s / on.exec_time_s);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("sieving wins on execution time and BPS agrees; bandwidth "
              "rewards the extra hole traffic instead.\n");
  return 0;
}
