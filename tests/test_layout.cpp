#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "pfs/layout.hpp"

namespace bpsio::pfs {
namespace {

StripeLayout layout(Bytes stripe, std::uint32_t servers) {
  StripeLayout l;
  l.stripe_size = stripe;
  for (std::uint32_t i = 0; i < servers; ++i) l.servers.push_back(i);
  return l;
}

TEST(Layout, SingleServerIsIdentity) {
  const auto l = layout(64 * kKiB, 1);
  const auto runs = split_range(l, 1000, 5000);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (ServerRun{0, 1000, 5000}));
}

TEST(Layout, RoundRobinAcrossStripeUnits) {
  const auto l = layout(100, 4);
  // [0, 400) touches each server's unit 0.
  const auto runs = split_range(l, 0, 400);
  ASSERT_EQ(runs.size(), 4u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(runs[s], (ServerRun{s, 0, 100}));
  }
}

TEST(Layout, SequentialReadYieldsOneRunPerServer) {
  const auto l = layout(100, 4);
  // Two full stripes: each server gets units {k, k+4} which are contiguous
  // in server-local space -> exactly one merged run per server.
  const auto runs = split_range(l, 0, 800);
  ASSERT_EQ(runs.size(), 4u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(runs[s], (ServerRun{s, 0, 200}));
  }
}

TEST(Layout, UnalignedRange) {
  const auto l = layout(100, 2);
  // [150, 370): tail of unit 1 and head of unit 3 land on server 1 at local
  // [50,100) and [100,170) — locally contiguous, so they merge; unit 2 is
  // server 0's local unit 1.
  const auto runs = split_range(l, 150, 220);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (ServerRun{0, 100, 100}));
  EXPECT_EQ(runs[1], (ServerRun{1, 50, 120}));
}

TEST(Layout, EmptyRange) {
  EXPECT_TRUE(split_range(layout(100, 3), 50, 0).empty());
}

TEST(Layout, ServerObjectSizesPartitionTheFile) {
  for (const Bytes size : {Bytes{1}, Bytes{99}, Bytes{100}, Bytes{101},
                           Bytes{1000}, Bytes{1234567}}) {
    for (std::uint32_t n : {1u, 2u, 3u, 8u}) {
      const auto l = layout(100, n);
      Bytes sum = 0;
      for (std::uint32_t s = 0; s < n; ++s) {
        sum += server_object_size(l, size, s);
      }
      EXPECT_EQ(sum, size) << "size=" << size << " servers=" << n;
    }
  }
  EXPECT_EQ(server_object_size(layout(100, 4), 0, 0), 0u);
}

// Property: split_range covers the request exactly once, each run maps back
// to the right global offsets, and runs stay within server object bounds.
class LayoutProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LayoutProperty, SplitRangeIsAnExactPartition) {
  Rng rng(GetParam());
  const Bytes stripe = 1 + rng.uniform_u64(256);
  const auto servers = static_cast<std::uint32_t>(1 + rng.uniform_u64(7));
  const auto l = layout(stripe, servers);
  const Bytes offset = rng.uniform_u64(10000);
  const Bytes size = 1 + rng.uniform_u64(5000);

  const auto runs = split_range(l, offset, size);
  Bytes total = 0;
  // Reconstruct global coverage through the inverse mapping.
  std::map<Bytes, Bytes> covered;  // global offset -> length
  for (const auto& run : runs) {
    total += run.length;
    // Map each byte range back: local unit u on server s is global unit
    // u_global = u * servers + s (all offsets in whole stripe units plus
    // remainder). Walk in stripe-sized pieces.
    Bytes local = run.local_offset;
    Bytes left = run.length;
    while (left > 0) {
      const Bytes unit = local / stripe;
      const Bytes within = local % stripe;
      const Bytes global =
          (unit * servers + run.server) * stripe + within;
      const Bytes take = std::min(left, stripe - within);
      covered[global] += take;
      local += take;
      left -= take;
    }
  }
  EXPECT_EQ(total, size);
  // Coverage must be contiguous [offset, offset+size) with no overlap.
  Bytes expect = offset;
  for (const auto& [global, len] : covered) {
    EXPECT_EQ(global, expect);
    expect += len;
  }
  EXPECT_EQ(expect, offset + size);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LayoutProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace bpsio::pfs
