// PollLoop (common/poll_loop.hpp) bookkeeping tests. The two cases here pin
// the exact hazards the helper exists to own: a listener callback growing
// the connection set mid-round (the PR-5 out-of-bounds regression — under
// ASan a scan bounded by the live count instead of the poll()-time snapshot
// reads past the pollfd array), and a connection callback removing its
// connection mid-scan (later revents are stale; they must be rediscovered
// by the next round, not serviced through shifted indices).
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstddef>
#include <vector>

#include "common/poll_loop.hpp"

namespace bpsio {
namespace {

/// A connected socket pair; `fd` is the end handed to PollLoop, `peer` the
/// end the test writes to to make `fd` readable.
struct TestConn {
  int fd = -1;
  int peer = -1;
};

TestConn make_conn() {
  int sv[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  return TestConn{sv[0], sv[1]};
}

void make_readable(const TestConn& conn) {
  ASSERT_EQ(::write(conn.peer, "x", 1), 1);
}

void drain_one(int fd) {
  char byte;
  ASSERT_EQ(::read(fd, &byte, 1), 1);
}

void close_conn(TestConn& conn) {
  if (conn.fd >= 0) ::close(conn.fd);
  if (conn.peer >= 0) ::close(conn.peer);
  conn.fd = conn.peer = -1;
}

TEST(PollLoop, IdleRoundTimesOutWithoutCallbacks) {
  TestConn conn = make_conn();  // connected but nothing written: not readable
  std::vector<int> fds = {conn.fd};
  PollLoop loop;
  std::size_t calls = 0;
  ASSERT_TRUE(loop.round(fds, 0, [&](std::size_t) {
                    ++calls;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(calls, 0u);
  close_conn(conn);
}

TEST(PollLoop, AcceptMidRoundServicesOnlyTheSnapshot) {
  // The listener fires first and appends two new READABLE connections to the
  // caller's set. The round polled only the two original connections, so
  // only indices 0 and 1 may be serviced this round — touching index 2 or 3
  // would read revents past the end of the armed pollfd array (the PR-5
  // regression, ASan-visible). The next round picks the newcomers up.
  TestConn listener = make_conn();
  std::vector<TestConn> conns = {make_conn(), make_conn()};
  make_readable(conns[0]);
  make_readable(conns[1]);
  std::vector<int> fds = {conns[0].fd, conns[1].fd};

  PollLoop loop;
  loop.add_listener(listener.fd, [&] {
    drain_one(listener.fd);
    for (int i = 0; i < 2; ++i) {
      conns.push_back(make_conn());
      make_readable(conns.back());
      fds.push_back(conns.back().fd);
    }
  });
  make_readable(listener);

  std::vector<std::size_t> serviced;
  const auto on_conn = [&](std::size_t i) {
    serviced.push_back(i);
    drain_one(fds[i]);
    return true;
  };
  ASSERT_TRUE(loop.round(fds, 1000, on_conn).ok());
  EXPECT_EQ(serviced, (std::vector<std::size_t>{0, 1}));
  ASSERT_EQ(fds.size(), 4u);

  serviced.clear();
  ASSERT_TRUE(loop.round(fds, 1000, on_conn).ok());
  EXPECT_EQ(serviced, (std::vector<std::size_t>{2, 3}));

  for (TestConn& conn : conns) close_conn(conn);
  close_conn(listener);
}

TEST(PollLoop, RemovalMidScanStopsAndRepolls) {
  // Connection 0's callback closes and removes it, shifting connections 1/2
  // down to indices 0/1. Their polled revents are now stale, so the scan
  // must stop at the removal; the readiness is still there, and the next
  // round services exactly the two survivors at their new indices.
  std::vector<TestConn> conns = {make_conn(), make_conn(), make_conn()};
  for (const TestConn& conn : conns) make_readable(conn);
  std::vector<int> fds = {conns[0].fd, conns[1].fd, conns[2].fd};

  PollLoop loop;
  std::vector<int> serviced_fds;
  bool removed = false;
  const auto on_conn = [&](std::size_t i) {
    serviced_fds.push_back(fds[i]);
    if (!removed) {
      removed = true;
      close_conn(conns[i]);
      conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
      fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i));
      return false;
    }
    drain_one(fds[i]);
    return true;
  };

  const int fd0 = fds[0];
  const int fd1 = fds[1];
  const int fd2 = fds[2];
  ASSERT_TRUE(loop.round(fds, 1000, on_conn).ok());
  EXPECT_EQ(serviced_fds, (std::vector<int>{fd0}));
  ASSERT_EQ(fds.size(), 2u);

  serviced_fds.clear();
  ASSERT_TRUE(loop.round(fds, 1000, on_conn).ok());
  EXPECT_EQ(serviced_fds, (std::vector<int>{fd1, fd2}));

  for (TestConn& conn : conns) close_conn(conn);
}

}  // namespace
}  // namespace bpsio
