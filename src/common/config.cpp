#include "common/config.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace bpsio {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        cfg.set(arg, "true");
      } else {
        cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
      }
    } else {
      cfg.positional_.push_back(std::move(arg));
    }
  }
  return cfg;
}

Config Config::from_string(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      cfg.set(token, "true");
    } else {
      cfg.set(token.substr(0, eq), token.substr(eq + 1));
    }
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  entries_[key] = value;
}

bool Config::has(const std::string& key) const {
  return entries_.count(key) != 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& dflt) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? dflt : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t dflt) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return dflt;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
  return (end && *end == '\0') ? v : dflt;
}

double Config::get_double(const std::string& key, double dflt) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return dflt;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : dflt;
}

bool Config::get_bool(const std::string& key, bool dflt) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return dflt;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return dflt;
}

Bytes Config::get_bytes(const std::string& key, Bytes dflt) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return dflt;
  return parse_bytes(it->second).value_or(dflt);
}

std::optional<Bytes> Config::parse_bytes(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || v < 0) return std::nullopt;
  std::string suffix;
  for (; *end; ++end) {
    suffix += static_cast<char>(std::tolower(static_cast<unsigned char>(*end)));
  }
  double mult = 1.0;
  if (suffix.empty() || suffix == "b") {
    mult = 1.0;
  } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
    mult = static_cast<double>(kKiB);
  } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
    mult = static_cast<double>(kMiB);
  } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
    mult = static_cast<double>(kGiB);
  } else if (suffix == "t" || suffix == "tb" || suffix == "tib") {
    mult = static_cast<double>(kTiB);
  } else {
    return std::nullopt;
  }
  return static_cast<Bytes>(v * mult);
}

}  // namespace bpsio
