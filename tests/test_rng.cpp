#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace bpsio {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformU64StaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.uniform_u64(17), 17u);
  }
  EXPECT_EQ(rng.uniform_u64(0), 0u);
  EXPECT_EQ(rng.uniform_u64(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(5, 4), 5);  // degenerate returns lo
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += (x - 10.0) * (x - 10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n), 3.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(21);
  (void)parent_copy.next();  // advance past the fork draw
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next() == parent_copy.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(31);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.next());
  rng.reseed(31);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next(), first[static_cast<std::size_t>(i)]);
}

}  // namespace
}  // namespace bpsio
