#include "metrics/online.hpp"

#include <cstdio>

#include "common/log.hpp"

namespace bpsio::metrics {

void OnlineBpsCounter::access_started(SimTime t) {
  if (active_ == 0) open_since_ = t;
  ++active_;
  ++started_;
}

void OnlineBpsCounter::access_finished(SimTime t, std::uint64_t blocks) {
  if (active_ == 0) {
    // Feeder contract violation (previously a bare assert that was a no-op
    // in Release, letting active_ wrap to ~4 billion): drop the event and
    // record the violation instead of corrupting B and T.
    ++unmatched_finishes_;
    BPSIO_WARN("online counter: finish at t=%lldns (%llu blocks) without a "
               "matching start; dropped",
               static_cast<long long>(t.ns()),
               static_cast<unsigned long long>(blocks));
    return;
  }
  blocks_ += blocks;
  ++finished_;
  --active_;
  if (active_ == 0) busy_ns_ += (t - open_since_).ns();
}

SimDuration OnlineBpsCounter::busy_time(SimTime now) const {
  std::int64_t total = busy_ns_;
  if (active_ > 0) total += (now - open_since_).ns();
  return SimDuration(total);
}

double OnlineBpsCounter::bps(SimTime now) const {
  const auto t = busy_time(now);
  if (t.ns() <= 0) return 0.0;
  return static_cast<double>(blocks_) / t.seconds();
}

void OnlineBpsCounter::reset() { *this = OnlineBpsCounter{}; }

std::string OnlineBpsCounter::to_string(SimTime now) const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "online BPS=%.6g (B=%llu, T=%.6gs, in-flight=%u)", bps(now),
                static_cast<unsigned long long>(blocks_),
                busy_time(now).seconds(), active_);
  return buf;
}

}  // namespace bpsio::metrics
