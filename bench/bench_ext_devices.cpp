// Extension experiment: the Set-1 methodology on device types the paper
// never had — RAID arrays and a block-layer scheduler. The point is
// external validity: BPS keeps the correct correlation direction on storage
// organizations outside the original evaluation.
#include "figure_bench.hpp"
#include "core/presets.hpp"
#include "device/hdd_model.hpp"
#include "device/io_scheduler.hpp"
#include "device/raid.hpp"
#include "workload/registry.hpp"

using namespace bpsio;

namespace {

core::DeviceFactory raid0_hdds(std::size_t n) {
  return [n](sim::Simulator& sim, std::uint64_t seed) {
    std::vector<std::unique_ptr<device::BlockDevice>> children;
    for (std::size_t i = 0; i < n; ++i) {
      children.push_back(std::make_unique<device::HddModel>(
          sim, core::paper_hdd(), seed + i));
    }
    return std::make_unique<device::Raid0Device>(sim, std::move(children),
                                                 64 * kKiB);
  };
}

core::DeviceFactory raid1_hdds(std::size_t n) {
  return [n](sim::Simulator& sim, std::uint64_t seed) {
    std::vector<std::unique_ptr<device::BlockDevice>> children;
    for (std::size_t i = 0; i < n; ++i) {
      children.push_back(std::make_unique<device::HddModel>(
          sim, core::paper_hdd(), seed + i));
    }
    return std::make_unique<device::Raid1Device>(sim, std::move(children));
  };
}

}  // namespace

int main(int argc, char** argv) {
  return bpsio::bench::run_figure_main(
      "Extension: CC values across novel storage organizations",
      "BPS stays direction-correct beyond the paper's device set",
      [](const core::figures::FigureDefaults& d) {
        const auto file = static_cast<Bytes>(256.0 * d.scale * (1 << 20));
        auto iozone = [file]() -> std::unique_ptr<workload::Workload> {
          workload::IozoneConfig cfg;
          cfg.file_size = file;
          cfg.record_size = 1 * kMiB;
          cfg.processes = 1;
          return workload::make_workload(cfg);
        };
        auto local_with = [](core::DeviceFactory factory,
                             const char* label) {
          return [factory, label](std::uint64_t seed) {
            core::TestbedConfig cfg = core::local_hdd_testbed(seed);
            cfg.device_factory = factory;
            cfg.label = label;
            // Let big requests span RAID members.
            cfg.local_fs.max_device_io = 256 * kKiB;
            return cfg;
          };
        };
        std::vector<core::RunSpec> specs;
        specs.push_back({"hdd",
                         [](std::uint64_t s) { return core::local_hdd_testbed(s); },
                         iozone});
        specs.push_back({"raid1x2", local_with(raid1_hdds(2), "raid1x2"), iozone});
        specs.push_back({"raid0x2", local_with(raid0_hdds(2), "raid0x2"), iozone});
        specs.push_back({"raid0x4", local_with(raid0_hdds(4), "raid0x4"), iozone});
        specs.push_back({"ssd",
                         [](std::uint64_t s) { return core::local_ssd_testbed(s); },
                         iozone});
        return specs;
      },
      argc, argv);
}
