// Shared CLI scaffolding for the harness-based bench binaries.
//
// Every BENCH_*.json-emitting bench fronts the same flags with the same
// spellings and defaults:
//
//   --profile=smoke|full     sample counts + CI target + workload size tier
//   --records=N              workload size override (0 = profile default)
//   --seed=S                 RNG seed (always printed — a reported number
//                            must be reproducible from its JSON record)
//   --samples-min/--samples-max/--target-ci/--confidence
//                            harness controls (0 = profile default)
//   --json                   write BENCH_<name>.json to the cwd
//   --json-dir=DIR           write it to DIR (implies --json)
//   --simulate-slowdown=F    scale measured durations (CI gate self-check)
//   --csv                    per-sample CSV on stdout after the summary
//   --threads=N              registered only by benches with a parallel path
//
// Built on tools/cli.hpp so `--help`, `--name=value`, and error reporting
// match every other bpsio binary.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "tools/cli.hpp"

namespace bpsio::bench {

struct CommonBenchArgs {
  std::string profile = "smoke";
  long long records = 0;  ///< 0 = profile default
  long long seed = 42;
  long long threads = 1;
  long long samples_min = 0;
  long long samples_max = 0;
  double target_ci = 0;
  double confidence = 0.95;
  double simulate_slowdown = 1.0;
  bool json = false;
  std::string json_dir;
  bool csv = false;
};

inline void register_common_flags(cli::ArgParser& parser, CommonBenchArgs* a,
                                  bool with_threads) {
  parser.add_value("--profile", "smoke|full",
                   "workload + sampling tier (default smoke)",
                   [a](const std::string& v) {
                     if (v != "smoke" && v != "full") return false;
                     a->profile = v;
                     return true;
                   });
  parser.add_int("--records", &a->records, 0, 1'000'000'000, "N",
                 "workload size override (0 = profile default)");
  parser.add_int("--seed", &a->seed, 0, INT64_MAX, "S",
                 "RNG seed for the synthetic workload (default 42)");
  if (with_threads) {
    parser.add_int("--threads", &a->threads, 1, 1024, "N",
                   "worker threads for the parallel variant (default 4)");
  }
  parser.add_int("--samples-min", &a->samples_min, 4, 100000, "N",
                 "samples before the first CI check (0 = profile default)");
  parser.add_int("--samples-max", &a->samples_max, 4, 100000, "N",
                 "sample cap for the adaptive loop (0 = profile default)");
  parser.add_positive_double("--target-ci", &a->target_ci, "FRAC",
                             "stop when CI half-width <= FRAC * mean "
                             "(0 = profile default)");
  parser.add_positive_double("--confidence", &a->confidence, "LEVEL",
                             "CI confidence level (default 0.95)");
  parser.add_positive_double("--simulate-slowdown", &a->simulate_slowdown,
                             "FACTOR",
                             "scale measured durations by FACTOR "
                             "(CI gate self-check; default 1)");
  parser.add_flag("--json", &a->json, "write BENCH_<name>.json to the cwd");
  parser.add_string("--json-dir", &a->json_dir, "DIR",
                    "write BENCH_<name>.json into DIR (implies --json)");
  parser.add_flag("--csv", &a->csv, "per-sample CSV after the summary line");
}

/// Harness configuration for `name` from the parsed args, profile defaults
/// filled in for anything left at 0.
inline HarnessConfig make_harness_config(const std::string& name,
                                         const CommonBenchArgs& a) {
  const bool smoke = a.profile == "smoke";
  HarnessConfig cfg;
  cfg.name = name;
  cfg.min_samples = a.samples_min > 0 ? static_cast<std::size_t>(a.samples_min)
                                      : (smoke ? 8 : 15);
  cfg.max_samples = a.samples_max > 0 ? static_cast<std::size_t>(a.samples_max)
                                      : (smoke ? 60 : 300);
  cfg.target_rel_half_width = a.target_ci > 0 ? a.target_ci
                                              : (smoke ? 0.10 : 0.03);
  if (cfg.max_samples < cfg.min_samples) cfg.max_samples = cfg.min_samples;
  cfg.confidence = a.confidence;
  cfg.simulate_slowdown = a.simulate_slowdown;
  cfg.seed = static_cast<std::uint64_t>(a.seed);
  cfg.threads = static_cast<int>(a.threads);
  return cfg;
}

/// Workload size: explicit --records, else the profile tier.
inline std::uint64_t resolve_records(const CommonBenchArgs& a,
                                     std::uint64_t smoke_default,
                                     std::uint64_t full_default) {
  if (a.records > 0) return static_cast<std::uint64_t>(a.records);
  return a.profile == "smoke" ? smoke_default : full_default;
}

/// Print the summary (and CSV when asked), write the JSON when asked.
/// Returns 0, or 1 when the JSON write failed.
inline int report_result(const CommonBenchArgs& args, const HarnessConfig& cfg,
                         const BenchResult& result,
                         std::map<std::string, std::string> extra) {
  BenchRecord record = result.to_record(cfg, std::move(extra));
  std::printf("%s\n", summary_line(record).c_str());
  if (args.csv) {
    std::printf("sample,%s\n", record.unit.c_str());
    for (std::size_t i = 0; i < record.samples_raw.size(); ++i) {
      std::printf("%zu,%.17g\n", i, record.samples_raw[i]);
    }
  }
  if (args.json || !args.json_dir.empty()) {
    const Status written = write_bench_record(args.json_dir, record);
    if (!written.ok()) {
      std::fprintf(stderr, "%s: %s\n", cfg.name.c_str(),
                   written.error().message.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace bpsio::bench
