// What-if storage study via trace replay: record an application's I/O on
// one testbed, then replay the trace (closed loop — same application,
// preserved think gaps) against candidate storage configurations and
// compare the BPS each would deliver. This is the capacity-planning workflow
// a trace-based toolkit enables.
//
//   build/examples/whatif_replay [--file=64M] [--record=64k] [--procs=2]
#include <cstdio>

#include "common/config.hpp"
#include "common/format.hpp"
#include "core/bps_meter.hpp"
#include "core/presets.hpp"
#include "core/testbed.hpp"
#include "metrics/calculators.hpp"
#include "workload/registry.hpp"

using namespace bpsio;

namespace {

struct Candidate {
  const char* name;
  core::TestbedConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc - 1, argv + 1);
  const auto procs = static_cast<std::uint32_t>(cfg.get_int("procs", 2));

  // Step 1: capture the application on the current system (a single HDD).
  workload::IozoneConfig app;
  app.file_size = cfg.get_bytes("file", 64 * kMiB);
  app.record_size = cfg.get_bytes("record", 64 * kKiB);
  app.processes = procs;
  app.think = SimDuration::from_ms(2.0);  // it computes between reads

  core::Testbed current(core::local_hdd_testbed(42));
  const workload::WorkloadPtr wkl = workload::make_workload(app);
  const auto baseline = wkl->run(current.env());
  std::printf("recorded: %zu accesses, %u procs, exec %.3fs, BPS %.0f on %s\n\n",
              baseline.collector.record_count(), procs,
              baseline.exec_time.seconds(), metrics::bps(baseline.collector),
              current.describe().c_str());

  // Step 2: replay the captured trace against candidate systems.
  std::vector<Candidate> candidates;
  candidates.push_back({"hdd (today)", core::local_hdd_testbed(42)});
  candidates.push_back({"ssd upgrade", core::local_ssd_testbed(42)});
  candidates.push_back(
      {"pvfs 2 servers", core::pvfs_testbed(2, pfs::DeviceKind::hdd, 1, 42)});
  candidates.push_back(
      {"pvfs 8 servers", core::pvfs_testbed(8, pfs::DeviceKind::hdd, 1, 42)});

  TextTable t({"candidate", "exec(s)", "T(s)", "BPS", "exec speedup"});
  double exec0 = 0;
  for (const auto& candidate : candidates) {
    core::Testbed testbed(candidate.config);
    workload::ReplayConfig replay_cfg;
    replay_cfg.records = baseline.collector.records();
    replay_cfg.mode = workload::ReplayConfig::Mode::closed_loop;
    const workload::WorkloadPtr replay = workload::make_workload(replay_cfg);
    const auto run = replay->run(testbed.env());
    const double exec = run.exec_time.seconds();
    if (exec0 == 0) exec0 = exec;
    t.add_row({candidate.name, fmt_double(exec, 3),
               fmt_double(metrics::overlapped_io_time(run.collector).seconds(), 3),
               fmt_double(metrics::bps(run.collector), 0),
               fmt_double(exec0 / exec, 2) + "x"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Replay preserves the recorded think gaps, so execution-time gains\n"
      "saturate once I/O stops being the bottleneck (Amdahl) — while BPS\n"
      "keeps separating the I/O systems themselves. Note the single-stream\n"
      "replay cannot exploit 8 servers much beyond 2: parallelism needs\n"
      "concurrency the recorded application does not have.\n");
  return 0;
}
