// Bottleneck attribution: re-run the Figure-9 concurrency sweep and, at
// each point, ask the resource accounting WHY execution time is what it is.
// Watch the bottleneck migrate from the server disks (low concurrency) to
// the client's receive NIC (high concurrency) — the mechanism behind the
// curve's flattening, stated by name.
//
//   build/examples/bottleneck_analysis [--total=256M]
#include <cstdio>

#include "common/config.hpp"
#include "common/format.hpp"
#include "core/presets.hpp"
#include "core/resources.hpp"
#include "core/testbed.hpp"
#include "workload/registry.hpp"

using namespace bpsio;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc - 1, argv + 1);
  const Bytes total = cfg.get_bytes("total", 256 * kMiB);

  std::printf("IOzone throughput mode on 8-server PVFS (one file per "
              "server), %s total\n\n",
              human_bytes(total).c_str());

  TextTable t({"procs", "exec(s)", "bottleneck", "util", "runner-up", "util"});
  for (std::uint32_t procs = 1; procs <= 8; procs *= 2) {
    core::TestbedConfig tb = core::pvfs_testbed(8, pfs::DeviceKind::hdd, 1, 42);
    tb.layout_policy = core::one_server_per_file_policy(8);
    core::Testbed testbed(tb);

    workload::IozoneConfig wl;
    wl.file_size = total;
    wl.record_size = 16 * kKiB;
    wl.processes = procs;
    const workload::WorkloadPtr wkl = workload::make_workload(wl);
    const auto run = wkl->run(testbed.env());

    auto usage = core::resource_usage(testbed, run.exec_time);
    std::sort(usage.begin(), usage.end(),
              [](const core::ResourceUsage& a, const core::ResourceUsage& b) {
                return a.utilization > b.utilization;
              });
    t.add_row({std::to_string(procs), fmt_double(run.exec_time.seconds(), 3),
               usage[0].name, fmt_double(usage[0].utilization * 100, 1) + "%",
               usage.size() > 1 ? usage[1].name : "-",
               usage.size() > 1
                   ? fmt_double(usage[1].utilization * 100, 1) + "%"
                   : "-"});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Full breakdown at the saturated end.
  core::TestbedConfig tb = core::pvfs_testbed(8, pfs::DeviceKind::hdd, 1, 42);
  tb.layout_policy = core::one_server_per_file_policy(8);
  core::Testbed testbed(tb);
  workload::IozoneConfig wl;
  wl.file_size = total;
  wl.record_size = 16 * kKiB;
  wl.processes = 8;
  const workload::WorkloadPtr wkl = workload::make_workload(wl);
  const auto run = wkl->run(testbed.env());
  std::printf("top resources at 8 processes:\n%s\n",
              core::usage_table(core::resource_usage(testbed, run.exec_time),
                                6)
                  .c_str());
  std::printf("Low concurrency: each stream's server disk limits it. High\n"
              "concurrency: the single client NIC absorbs all eight streams\n"
              "and saturates — adding processes past that point cannot help,\n"
              "which is exactly where the Figure-10 curve flattens.\n");
  return 0;
}
