#include <gtest/gtest.h>

#include <vector>

#include "sim/service_center.hpp"

namespace bpsio::sim {
namespace {

TEST(ServiceCenter, SingleSlotSerializesJobs) {
  Simulator sim;
  ServiceCenter center(sim, 1);
  std::vector<std::pair<std::int64_t, std::int64_t>> spans;
  for (int i = 0; i < 3; ++i) {
    center.submit(SimDuration(10), [&](SimTime s, SimTime e) {
      spans.emplace_back(s.ns(), e.ns());
    });
  }
  sim.run();
  ASSERT_EQ(spans.size(), 3u);
  const std::pair<std::int64_t, std::int64_t> expected[] = {
      {0, 10}, {10, 20}, {20, 30}};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)], expected[i]);
  }
  EXPECT_EQ(center.jobs_completed(), 3u);
  EXPECT_EQ(center.busy_time().ns(), 30);
}

TEST(ServiceCenter, MultiSlotRunsInParallel) {
  Simulator sim;
  ServiceCenter center(sim, 2);
  std::vector<std::int64_t> ends;
  for (int i = 0; i < 4; ++i) {
    center.submit(SimDuration(10),
                  [&](SimTime, SimTime e) { ends.push_back(e.ns()); });
  }
  sim.run();
  ASSERT_EQ(ends.size(), 4u);
  // Two waves of two.
  EXPECT_EQ(ends[0], 10);
  EXPECT_EQ(ends[1], 10);
  EXPECT_EQ(ends[2], 20);
  EXPECT_EQ(ends[3], 20);
}

TEST(ServiceCenter, DeferredServiceTimeSeesDispatchState) {
  // The service-time functor must be evaluated at dispatch, not submit,
  // so device models can inspect head position / arrival order.
  Simulator sim;
  ServiceCenter center(sim, 1);
  std::vector<std::int64_t> dispatch_times;
  for (int i = 0; i < 3; ++i) {
    center.submit(
        [&]() {
          dispatch_times.push_back(sim.now().ns());
          return SimDuration(7);
        },
        [](SimTime, SimTime) {});
  }
  sim.run();
  EXPECT_EQ(dispatch_times, (std::vector<std::int64_t>{0, 7, 14}));
}

TEST(ServiceCenter, MeanWaitTracksQueueing) {
  Simulator sim;
  ServiceCenter center(sim, 1);
  for (int i = 0; i < 3; ++i) {
    center.submit(SimDuration(10), [](SimTime, SimTime) {});
  }
  sim.run();
  // Waits: 0, 10, 20 -> mean 10.
  EXPECT_NEAR(center.mean_wait_seconds(), 10e-9, 1e-15);
}

TEST(ServiceCenter, CompletionHandlerCanResubmit) {
  Simulator sim;
  ServiceCenter center(sim, 1);
  int chain = 0;
  std::function<void(SimTime, SimTime)> resubmit =
      [&](SimTime, SimTime) {
        if (++chain < 4) center.submit(SimDuration(5), resubmit);
      };
  center.submit(SimDuration(5), resubmit);
  sim.run();
  EXPECT_EQ(chain, 4);
  EXPECT_EQ(sim.now().ns(), 20);
}

TEST(ServiceCenter, QueueLengthAndBusySlotsObservable) {
  Simulator sim;
  ServiceCenter center(sim, 1);
  center.submit(SimDuration(100), [](SimTime, SimTime) {});
  center.submit(SimDuration(100), [](SimTime, SimTime) {});
  // First dispatched immediately, second queued.
  EXPECT_EQ(center.busy_slots(), 1u);
  EXPECT_EQ(center.queue_length(), 1u);
  sim.run();
  EXPECT_EQ(center.busy_slots(), 0u);
  EXPECT_EQ(center.queue_length(), 0u);
}

TEST(ServiceCenter, ZeroServiceTimeJobs) {
  Simulator sim;
  ServiceCenter center(sim, 1);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    center.submit(SimDuration::zero(), [&](SimTime s, SimTime e) {
      EXPECT_EQ(s, e);
      ++done;
    });
  }
  sim.run();
  EXPECT_EQ(done, 5);
}

}  // namespace
}  // namespace bpsio::sim
