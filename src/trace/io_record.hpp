// The I/O access record — Step 1 of the paper's BPS measurement methodology.
//
// "We use one record to capture the information of each I/O access of a
//  process. Each record includes process ID, I/O size (blocks), I/O start
//  time, and I/O end time." (Section III.B)
//
// The paper sizes each record at 32 bytes ("even for 65535 I/O operations,
// all the records need about 3 megabytes"); IoRecord is laid out to match.
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_time.hpp"
#include "common/units.hpp"

namespace bpsio::trace {

enum class IoOpKind : std::uint8_t {
  read = 0,
  write = 1,
};

enum IoRecordFlags : std::uint8_t {
  kIoOk = 0,
  /// The access failed. Failed accesses still count toward B: "all the I/O
  /// blocks issued from the application are counted, including all successful
  /// accesses, non-successful ones, and all concurrent ones."
  kIoFailed = 1u << 0,
  /// The access was serviced by a collective / list operation (MPI-IO).
  kIoCollective = 1u << 1,
  /// A synchronization access (fsync/fdatasync) captured from a real program:
  /// it occupies I/O time (its interval counts toward T) but moves zero
  /// application-required blocks, so blocks == 0 is valid for it.
  kIoSync = 1u << 2,
};

/// One application-level I/O access. POD, 32 bytes, trivially serializable.
struct IoRecord {
  std::uint32_t pid = 0;       ///< issuing process id
  IoOpKind op = IoOpKind::read;
  std::uint8_t flags = kIoOk;
  std::uint16_t reserved = 0;  ///< padding, kept zero for stable serialization
  std::uint64_t blocks = 0;    ///< I/O size in block units (app-required data)
  std::int64_t start_ns = 0;   ///< access start, ns since run start
  std::int64_t end_ns = 0;     ///< access end, ns since run start

  SimTime start() const { return SimTime(start_ns); }
  SimTime end() const { return SimTime(end_ns); }
  SimDuration response_time() const { return SimDuration(end_ns - start_ns); }
  bool failed() const { return (flags & kIoFailed) != 0; }
  bool sync() const { return (flags & kIoSync) != 0; }

  /// Validity: a record must have end >= start. Zero-duration records
  /// (end == start) are valid — real syscalls captured with a nanosecond
  /// clock can start and finish inside one tick.
  bool valid() const { return end_ns >= start_ns; }

  friend bool operator==(const IoRecord&, const IoRecord&) = default;

  std::string to_string() const;
};

static_assert(sizeof(IoRecord) == 32, "paper specifies 32-byte records");

/// Convenience constructor used heavily in tests and examples.
IoRecord make_record(std::uint32_t pid, std::uint64_t blocks, SimTime start,
                     SimTime end, IoOpKind op = IoOpKind::read,
                     std::uint8_t flags = kIoOk);

}  // namespace bpsio::trace
