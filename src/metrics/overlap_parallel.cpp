// Sharded Figure-3 pipeline: the sort is the only super-linear stage of the
// union computation, so that is what fans out. P contiguous shards are sorted
// concurrently, then a single thread streams the k-way merge straight into
// the linear union scan — no merged array is materialized, so the extra
// memory over the serial path is O(P), not O(n).
#include "metrics/overlap.hpp"

#include <algorithm>

namespace bpsio::metrics {

namespace {

// Same ordering as overlap.cpp's sort_by_start — the contract that makes
// the parallel result equal to overlap_time_merged by construction.
bool interval_less(const TimeInterval& a, const TimeInterval& b) {
  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
  return a.end_ns < b.end_ns;
}

// Below this size a single std::sort beats shard + merge on every machine we
// care about; keeps the small-trace hot path allocation-free.
constexpr std::size_t kParallelCutoff = 1 << 14;

struct ShardCursor {
  std::size_t pos;  ///< next unconsumed element
  std::size_t end;
};

}  // namespace

SimDuration overlap_time_parallel(std::vector<TimeInterval> col_time,
                                  ThreadPool& pool) {
  const std::size_t n = col_time.size();
  if (pool.size() <= 1 || n < kParallelCutoff) {
    return overlap_time_merged(std::move(col_time));
  }

  // Shard boundaries: at most pool.size() contiguous ranges.
  const std::size_t shards = std::min(pool.size(), n);
  const std::size_t per = (n + shards - 1) / shards;
  std::vector<ShardCursor> cursors;
  for (std::size_t begin = 0; begin < n; begin += per) {
    cursors.push_back({begin, std::min(begin + per, n)});
  }

  // Sort each shard on its own worker.
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(cursors.size());
    auto* data = col_time.data();
    for (const auto& c : cursors) {
      tasks.push_back([data, c] {
        std::sort(data + c.pos, data + c.end, interval_less);
      });
    }
    pool.run_all(std::move(tasks));
  }

  // K-way merge + union scan in one pass. The shard count is small (pool
  // width), so a linear scan over cursors beats a heap's bookkeeping.
  auto next_min = [&]() -> const TimeInterval* {
    const TimeInterval* best = nullptr;
    ShardCursor* best_cursor = nullptr;
    for (auto& c : cursors) {
      if (c.pos == c.end) continue;
      const TimeInterval* head = &col_time[c.pos];
      if (!best || interval_less(*head, *best)) {
        best = head;
        best_cursor = &c;
      }
    }
    if (best_cursor) ++best_cursor->pos;
    return best;
  };

  const TimeInterval* first = next_min();
  std::int64_t T = 0;
  TimeInterval cur = *first;  // n >= cutoff, so never null here
  while (const TimeInterval* next = next_min()) {
    if (next->start_ns <= cur.end_ns) {
      cur.end_ns = std::max(cur.end_ns, next->end_ns);
    } else {
      T += cur.end_ns - cur.start_ns;
      cur = *next;
    }
  }
  T += cur.end_ns - cur.start_ns;
  return SimDuration(T);
}

SimDuration overlap_time_parallel(std::vector<TimeInterval> col_time,
                                  std::size_t threads) {
  ThreadPool pool(threads);
  return overlap_time_parallel(std::move(col_time), pool);
}

}  // namespace bpsio::metrics
