#include "core/figures.hpp"

#include <memory>

#include "common/format.hpp"
#include "core/presets.hpp"
#include "workload/registry.hpp"
#include "workload/zoo/zoo.hpp"

namespace bpsio::core::figures {

namespace {

Bytes scaled(double scale, Bytes base) {
  const double v = scale * static_cast<double>(base);
  // Keep at least one page worth of data.
  return v < 4096.0 ? 4096 : static_cast<Bytes>(v);
}

}  // namespace

std::vector<Bytes> set2_record_sizes() {
  std::vector<Bytes> sizes;
  for (Bytes r = 4 * kKiB; r <= 8 * kMiB; r *= 2) sizes.push_back(r);
  return sizes;
}

std::vector<Bytes> set4_spacings() {
  std::vector<Bytes> spacings;
  for (Bytes s = 8; s <= 4096; s *= 2) spacings.push_back(s);
  return spacings;
}

// ---------------------------------------------------------------------------
// Fig 4 — Set 1: various storage devices, IOzone sequential read, 1 process.
// Paper: 64 GB file; scaled default 256 MiB, 4 MiB records (striping-friendly).
// ---------------------------------------------------------------------------
std::vector<RunSpec> fig4_devices(const FigureDefaults& d) {
  const Bytes file = scaled(d.scale, 256 * kMiB);
  const Bytes record = 4 * kMiB;

  auto iozone = [file, record]() -> std::unique_ptr<workload::Workload> {
    workload::IozoneConfig cfg;
    cfg.mode = workload::IozoneConfig::Mode::read;
    cfg.file_size = file;
    cfg.record_size = record;
    cfg.processes = 1;
    return workload::make_workload(cfg);
  };

  std::vector<RunSpec> specs;
  specs.push_back(RunSpec{
      "hdd", [](std::uint64_t seed) { return local_hdd_testbed(seed); },
      iozone});
  specs.push_back(RunSpec{
      "ssd", [](std::uint64_t seed) { return local_ssd_testbed(seed); },
      iozone});
  for (std::uint32_t servers : {1u, 2u, 4u, 8u}) {
    specs.push_back(RunSpec{
        "pvfs" + std::to_string(servers),
        [servers](std::uint64_t seed) {
          return pvfs_testbed(servers, pfs::DeviceKind::hdd, 1, seed);
        },
        iozone});
  }
  return specs;
}

// ---------------------------------------------------------------------------
// Fig 5 / Fig 6 — Set 2: record-size sweep on a local device.
// Paper: 16 GB file; scaled default 256 MiB.
// ---------------------------------------------------------------------------
namespace {

std::vector<RunSpec> iosize_sweep(const FigureDefaults& d, bool ssd) {
  const Bytes file = scaled(d.scale, 256 * kMiB);
  std::vector<RunSpec> specs;
  for (const Bytes record : set2_record_sizes()) {
    specs.push_back(RunSpec{
        human_bytes(record),
        [ssd](std::uint64_t seed) {
          return ssd ? local_ssd_testbed(seed) : local_hdd_testbed(seed);
        },
        [file, record]() -> std::unique_ptr<workload::Workload> {
          workload::IozoneConfig cfg;
          cfg.mode = workload::IozoneConfig::Mode::read;
          cfg.file_size = file;
          cfg.record_size = record;
          cfg.processes = 1;
          return workload::make_workload(cfg);
        }});
  }
  return specs;
}

}  // namespace

std::vector<RunSpec> fig5_iosize_hdd(const FigureDefaults& d) {
  return iosize_sweep(d, /*ssd=*/false);
}

std::vector<RunSpec> fig6_iosize_ssd(const FigureDefaults& d) {
  return iosize_sweep(d, /*ssd=*/true);
}

// ---------------------------------------------------------------------------
// Fig 9 — Set 3a: "pure" concurrency. IOzone throughput mode, each process
// its own file pinned to its own server; POSIX through PVFS; one shared
// client node. Paper: 8 servers, 32 GB total; scaled default 256 MiB total.
// ---------------------------------------------------------------------------
std::vector<RunSpec> fig9_concurrency_pure(const FigureDefaults& d) {
  const Bytes total = scaled(d.scale, 256 * kMiB);
  // 16 KiB records keep per-stream demand below the client NIC line rate
  // until ~8 streams, so the execution-time curve keeps falling across the
  // sweep the way Figure 10 shows.
  const Bytes record = 16 * kKiB;

  std::vector<RunSpec> specs;
  for (std::uint32_t procs = 1; procs <= 8; ++procs) {
    specs.push_back(RunSpec{
        std::to_string(procs),
        [](std::uint64_t seed) {
          TestbedConfig cfg = pvfs_testbed(8, pfs::DeviceKind::hdd,
                                           /*clients=*/1, seed);
          cfg.layout_policy = one_server_per_file_policy(8);
          return cfg;
        },
        [total, record, procs]() -> std::unique_ptr<workload::Workload> {
          workload::IozoneConfig cfg;
          cfg.mode = workload::IozoneConfig::Mode::read;
          cfg.file_size = total;     // divided across processes
          cfg.size_is_total = true;
          cfg.record_size = record;
          cfg.processes = procs;
          cfg.separate_files = true;
          return workload::make_workload(cfg);
        }});
  }
  return specs;
}

// ---------------------------------------------------------------------------
// Fig 11 — Set 3b: IOR, shared PVFS file striped on 8 servers (default
// layout), 64 KB transfers, sequential offsets, each of n processes reads
// its 1/n. Paper: 32 GB, 1..32 processes; scaled default 256 MiB.
// ---------------------------------------------------------------------------
std::vector<RunSpec> fig11_concurrency_ior(const FigureDefaults& d) {
  const Bytes total = scaled(d.scale, 256 * kMiB);
  std::vector<RunSpec> specs;
  for (std::uint32_t procs : {1u, 2u, 4u, 8u, 16u, 32u}) {
    specs.push_back(RunSpec{
        std::to_string(procs),
        [procs](std::uint64_t seed) {
          // IOR processes run one per compute node.
          return pvfs_testbed(8, pfs::DeviceKind::hdd, procs, seed);
        },
        [total, procs]() -> std::unique_ptr<workload::Workload> {
          workload::IorConfig cfg;
          cfg.file_size = total;
          cfg.transfer_size = 64 * kKiB;
          cfg.processes = procs;
          cfg.write = false;
          return workload::make_workload(cfg);
        }});
  }
  return specs;
}

// ---------------------------------------------------------------------------
// Fig 12 — Set 4: Hpio with data sieving on 4 servers. Paper: region count
// 4 096 000, region size 256 B, spacing 8..4096 B; scaled default 65536
// regions. 4 processes on 4 nodes.
// ---------------------------------------------------------------------------
std::vector<RunSpec> fig12_datasieving(const FigureDefaults& d) {
  const auto regions =
      static_cast<std::uint64_t>(scaled(d.scale, 65536));
  std::vector<RunSpec> specs;
  for (const Bytes spacing : set4_spacings()) {
    specs.push_back(RunSpec{
        std::to_string(spacing) + "B",
        [](std::uint64_t seed) {
          return pvfs_testbed(4, pfs::DeviceKind::hdd, /*clients=*/4, seed);
        },
        [regions, spacing]() -> std::unique_ptr<workload::Workload> {
          workload::HpioConfig cfg;
          cfg.region_count = regions;
          cfg.region_size = 256;
          cfg.region_spacing = spacing;
          cfg.processes = 4;
          cfg.sieving.enabled = true;
          cfg.regions_per_call = 8192;
          return workload::make_workload(cfg);
        }});
  }
  return specs;
}

// ---------------------------------------------------------------------------
// Beyond the paper: the real-application zoo — one run per scenario, all on
// the local-SSD testbed so rows are comparable, every workload constructed
// through the string-keyed registry (the canonical external usage).
// ---------------------------------------------------------------------------
std::vector<RunSpec> zoo_scenarios(const FigureDefaults& d) {
  std::vector<RunSpec> specs;
  for (const workload::zoo::ScenarioInfo& info : workload::zoo::scenarios()) {
    const std::string name = info.name;
    const double scale = d.scale;
    specs.push_back(RunSpec{
        name, [](std::uint64_t seed) { return local_ssd_testbed(seed); },
        [name, scale]() -> std::unique_ptr<workload::Workload> {
          workload::Params params;
          params.set("scale", std::to_string(scale));
          return std::move(workload::make_workload("zoo." + name, params))
              .value();
        }});
  }
  return specs;
}

SweepResult run_figure(const std::vector<RunSpec>& specs,
                       const FigureDefaults& d) {
  SweepOptions options;
  options.repeats = d.repeats;
  options.base_seed = d.base_seed;
  options.threads = d.threads;
  return run_sweep(specs, options);
}

}  // namespace bpsio::core::figures
