// Public facade: workload construction and execution.
//
// Stable entry points re-exported here:
//   * workload::Workload / Env / RunResult — the workload abstraction and
//     what a run hands back            (workload/workload.hpp)
//   * workload::registry() / make_workload(name, Params) — the string-keyed
//     workload catalog; THE way to construct workloads (typed
//     make_workload(Config) overloads included)
//                                      (workload/registry.hpp)
//   * workload::ReplayConfig / TraceReplayWorkload — replay recorded traces
//     on any testbed                   (workload/replay.hpp)
//   * workload::zoo::scenarios() / build_plan() / ZooPlan / ZooWorkload —
//     the real-application workload zoo (workload/zoo/zoo.hpp)
//   * workload::zoo::parse_darshan / load_darshan / export_darshan —
//     Darshan-style log import/export  (workload/zoo/darshan_import.hpp)
//
// See docs/API.md for the stability policy and the deprecation note on
// direct concrete-workload construction.
#pragma once

#include "workload/registry.hpp"
#include "workload/replay.hpp"
#include "workload/workload.hpp"
#include "workload/zoo/darshan_import.hpp"
#include "workload/zoo/zoo.hpp"
