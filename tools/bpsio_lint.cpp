// bpsio-lint — repo-specific static checks for the BPS metric pipeline.
//
// The BPS metric's validity rests on contracts a generic compiler never sees
// (PAPER.md §III.B): B must be accumulated in exact integer arithmetic, T
// must come from a deterministic interval merge, and the analysis paths must
// be replayable bit-for-bit. This tool is a token/regex scanner (no libclang)
// over src/ that turns those conventions into CI failures. It runs as a
// ctest (`bpsio_lint_src`) and self-verifies every rule against synthetic
// violations (`bpsio_lint_selftest`).
//
// Rules (see docs/STATIC_ANALYSIS.md for rationale):
//   iorecord-sort   std::sort/std::stable_sort over IoRecord ranges outside
//                   the blessed comparators in trace/ and metrics/overlap*.
//   raw-random      rand()/srand()/std::random_device/wall-clock reads
//                   outside common/rng (determinism: seeds only).
//   float-blocks    float/double variables holding block counts (B is exact;
//                   floating accumulation drifts).
//   bare-assert     assert( in src/ — contracts must use BPSIO_CHECK, which
//                   stays armed in Release.
//   mutable-global  static/namespace-scope mutable state that is not atomic,
//                   const, or a synchronization primitive.
//   records-materialize
//                   .records() member calls outside the source adapters in
//                   trace/ — materializing the full record vector caps
//                   analyzable traces at RAM; metric code pulls bounded
//                   chunks from a trace::RecordSource instead.
//   legacy-run-sweep
//                   calls to the removed positional run_sweep(specs,
//                   repeats, seed) overload — sweeps configure through
//                   core::SweepOptions.
//   unchecked-syscall
//                   discarded return values of read/write/pread/pwrite/
//                   ftruncate/fsync/fdatasync — a short or failed syscall
//                   that nobody noticed silently corrupts a trace file or
//                   drops records.
//   record-copy-loop
//                   range-for over an IoRecord span whose whole body is one
//                   unconditional push_back/add/append/ship/forward of the
//                   loop variable — every sink on the record path (spools,
//                   aggregators, the agent→collector forward link) has a
//                   bulk span overload; copying one record at a time
//                   forfeits it.
//
// Escape hatch: `// bpsio-lint: allow(rule)` on the offending line or on a
// comment-only line directly above it. Every allow must carry a
// justification comment.
//
// Usage:
//   bpsio_lint --root <dir>     lint all .cpp/.hpp under <dir>
//   bpsio_lint <files...>       lint specific files
//   bpsio_lint --threads=N      fan the scan out over N workers (0 = all
//                               cores); output is order-stable either way
//   bpsio_lint --self-test      prove every rule fires and is suppressible
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "cli.hpp"
#include "source_model.hpp"
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

// The comment/string-stripped token substrate is shared with bpsio_analyze
// (tools/source_model.hpp); only the rules live here.
using bpsio::srcmodel::SourceFile;
using bpsio::srcmodel::collect_files;
using bpsio::srcmodel::find_calls;
using bpsio::srcmodel::ident_char;
using bpsio::srcmodel::is_allowed;
using bpsio::srcmodel::path_contains;
using bpsio::srcmodel::statement_at;

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string detail;
};

SourceFile load_source(std::string path, const std::string& content) {
  return bpsio::srcmodel::load_source(std::move(path), content, "bpsio-lint");
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

using RuleFn = void (*)(const SourceFile&, std::vector<Finding>&);

void add_finding(const SourceFile& src, std::vector<Finding>& out,
                 std::size_t line, const char* rule, std::string detail) {
  if (is_allowed(src, line, rule)) return;
  out.push_back(Finding{src.path, line + 1, rule, std::move(detail)});
}

// Determinism contract (PAPER.md §III.B, Figure 3): IoRecord ranges are
// sorted only by the blessed comparators in trace/ and metrics/overlap*,
// which define the canonical (start_ns, end_ns) order that makes the
// parallel pipeline bit-identical to the serial one.
void rule_iorecord_sort(const SourceFile& src, std::vector<Finding>& out) {
  if (path_contains(src.path, "src/trace/") ||
      path_contains(src.path, "src/metrics/overlap")) {
    return;
  }
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    bool found = false;
    for (const char* fn : {"std::sort", "std::stable_sort", "std::partial_sort"}) {
      if (!find_calls(src.code[i], fn, /*require_paren=*/true).empty()) {
        found = true;
      }
    }
    if (!found) continue;
    const std::string stmt = statement_at(src, i);
    if (stmt.find("IoRecord") != std::string::npos) {
      add_finding(src, out, i, "iorecord-sort",
                  "sorting IoRecord range outside the blessed comparators in "
                  "trace/ and metrics/overlap*");
    }
  }
}

// Determinism contract: the only entropy source is common/rng (seeded,
// replayable); wall-clock reads would make runs non-reproducible.
void rule_raw_random(const SourceFile& src, std::vector<Finding>& out) {
  if (path_contains(src.path, "src/common/rng")) return;
  struct Probe {
    const char* token;
    bool call;  // must be followed by '('
  };
  const Probe probes[] = {
      {"rand", true},          {"srand", true},
      {"random_device", false}, {"time", true},
      {"clock", true},         {"gettimeofday", true},
      {"system_clock", false}, {"steady_clock", false},
      {"high_resolution_clock", false},
  };
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    for (const Probe& p : probes) {
      if (!find_calls(src.code[i], p.token, p.call).empty()) {
        add_finding(src, out, i, "raw-random",
                    std::string("'") + p.token +
                        "' outside common/rng breaks deterministic replay");
      }
    }
  }
}

// Exactness contract (paper: B is a *count* of required blocks): block
// counts accumulate in unsigned integers; a float/double accumulator loses
// exactness past 2^53 and drifts under reassociation.
void rule_float_blocks(const SourceFile& src, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& code = src.code[i];
    for (const char* type : {"double", "float"}) {
      for (std::size_t at : find_calls(code, type, /*require_paren=*/false)) {
        // Scan the declared name(s): stop at anything that ends the
        // declarator head (initializer, call, statement end).
        std::size_t end = code.find_first_of("=;,(){", at);
        if (end == std::string::npos) end = code.size();
        const std::string head = code.substr(at, end - at);
        const std::size_t b = head.find("block");
        // Require "block" to start an identifier-ish word (total_blocks,
        // blocks_, block_count), not e.g. a type name mid-token.
        if (b != std::string::npos) {
          add_finding(src, out, i, "float-blocks",
                      "block counts must accumulate in integers (B is exact); "
                      "convert to double only at the final division");
          break;
        }
      }
    }
  }
}

// Release-mode contract checks: assert() compiles out under NDEBUG (the
// default build), silently disarming every invariant. BPSIO_CHECK stays on.
void rule_bare_assert(const SourceFile& src, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    for (std::size_t at :
         find_calls(src.code[i], "assert", /*require_paren=*/true)) {
      // static_assert is compile-time and fine; find_calls already rejects
      // identifier-prefixed matches, but be explicit about intent.
      (void)at;
      add_finding(src, out, i, "bare-assert",
                  "use BPSIO_CHECK/BPSIO_DCHECK (common/check.hpp): assert() "
                  "is a no-op in Release builds");
      break;
    }
  }
}

// Concurrency contract: the analysis layer fans out through ThreadPool;
// non-atomic mutable shared state is a data race waiting for a schedule.
// Synchronization primitives and constants are exempt.
void rule_mutable_global(const SourceFile& src, std::vector<Finding>& out) {
  auto benign = [](const std::string& stmt) {
    for (const char* ok :
         {"const", "constexpr", "thread_local", "atomic", "Mutex", "mutex",
          "once_flag", "CondVar"}) {
      if (stmt.find(ok) != std::string::npos) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& code = src.code[i];

    // (a) `static` storage that is not const/atomic/sync and initializes or
    // declares a variable (function declarations contain '(' before any '='
    // or ';' and are skipped).
    for (std::size_t at : find_calls(code, "static", /*require_paren=*/false)) {
      const std::string stmt = statement_at(src, i).substr(
          i == 0 ? at : 0);  // cheap: whole joined statement
      if (benign(stmt)) continue;
      const std::size_t paren = stmt.find('(');
      const std::size_t eq = stmt.find('=');
      const std::size_t semi = stmt.find(';');
      const bool is_function =
          paren != std::string::npos &&
          (eq == std::string::npos || paren < eq) &&
          (semi == std::string::npos || paren < semi);
      if (is_function) continue;
      if (semi == std::string::npos && eq == std::string::npos) continue;
      add_finding(src, out, i, "mutable-global",
                  "static mutable state must be std::atomic, const, or a "
                  "synchronization primitive");
      break;
    }

    // (b) namespace-scope `g_` globals (project convention) that are not
    // atomic/const/sync-typed.
    for (std::size_t at : find_calls(code, "g_", /*require_paren=*/false)) {
      (void)at;
      // Only treat as a *declaration* when a type-ish token precedes g_ on
      // the same line (crude but effective: line must not start with g_ and
      // must end the statement with '=' or ';').
      const std::string stmt = statement_at(src, i);
      const std::size_t first = code.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      if (code.compare(first, 2, "g_") == 0) continue;  // use, not decl
      if (stmt.find('=') == std::string::npos &&
          stmt.find(';') == std::string::npos) {
        continue;
      }
      if (benign(stmt)) continue;
      // Reject expressions (assignment to member, function call args...):
      // require the g_ token to be directly preceded by an identifier or
      // '>' or '&' plus whitespace — i.e. `Type g_name`.
      const std::size_t g = code.find("g_");
      std::size_t p = g;
      while (p > 0 && code[p - 1] == ' ') --p;
      if (p == 0) continue;
      const char before = code[p - 1];
      if (!ident_char(before) && before != '>' && before != '&' &&
          before != '*') {
        continue;
      }
      add_finding(src, out, i, "mutable-global",
                  "namespace-scope mutable global must be std::atomic, "
                  "const, or a synchronization primitive");
      break;
    }
  }
}

// Bounded-memory contract (streaming pipeline): iterating a collector's or
// buffer's .records() vector materializes the whole trace, capping analyzable
// sizes at RAM. Only the source adapters in trace/ (collector_source,
// collector_view, the buffers they wrap) may touch it; metric code pulls
// chunks from a trace::RecordSource.
void rule_records_materialize(const SourceFile& src,
                              std::vector<Finding>& out) {
  if (path_contains(src.path, "src/trace/")) return;
  const std::string token = "records";
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& code = src.code[i];
    std::size_t at = 0;
    while ((at = code.find(token, at)) != std::string::npos) {
      const std::size_t end = at + token.size();
      // Member access only (`.records()` / `->records()`): free identifiers
      // and longer names (record_count, records_) are unrelated.
      const bool member =
          (at >= 1 && code[at - 1] == '.') ||
          (at >= 2 && code[at - 2] == '-' && code[at - 1] == '>');
      const bool whole = end >= code.size() || !ident_char(code[end]);
      bool call = false;
      if (whole) {
        std::size_t j = end;
        while (j < code.size() && code[j] == ' ') ++j;
        call = j < code.size() && code[j] == '(';
      }
      if (member && whole && call) {
        add_finding(src, out, i, "records-materialize",
                    "iterating .records() materializes the whole trace; pull "
                    "bounded chunks from a trace::RecordSource "
                    "(trace/record_source.hpp) instead");
        break;
      }
      at = end;
    }
  }
}

// API contract: the positional run_sweep(specs, repeats, seed) overload was
// removed in favor of run_sweep(specs, SweepOptions) — the positional form
// silently reorders meaning when a parameter is added. This guard keeps the
// deleted overload from creeping back in call sites (a numeric second
// argument can only be the legacy shape).
void rule_legacy_run_sweep(const SourceFile& src, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    for (std::size_t at :
         find_calls(src.code[i], "run_sweep", /*require_paren=*/true)) {
      (void)at;
      const std::string stmt = statement_at(src, i);
      const std::size_t open = stmt.find("run_sweep");
      const std::size_t paren = stmt.find('(', open);
      if (paren == std::string::npos) continue;
      const std::size_t comma = stmt.find(',', paren);
      if (comma == std::string::npos) continue;  // single-argument call
      std::size_t arg = comma + 1;
      while (arg < stmt.size() && stmt[arg] == ' ') ++arg;
      const bool numeric_second =
          arg < stmt.size() &&
          std::isdigit(static_cast<unsigned char>(stmt[arg]));
      if (numeric_second || stmt.find("uint32_t repeats") != std::string::npos) {
        add_finding(src, out, i, "legacy-run-sweep",
                    "positional run_sweep(specs, repeats, seed) was removed; "
                    "pass a core::SweepOptions (core/experiment.hpp)");
        break;
      }
    }
  }
}

// Durability contract (capture subsystem, DESIGN.md §9): a discarded
// read/write/fsync result hides short transfers and failures — a spill file
// silently truncates, a trace silently drops records. Only calls whose
// result is discarded as a bare expression-statement are flagged; assigning,
// testing, or explicitly `(void)`-casting the result all pass, as do stream
// member calls like `out.write(...)`.
void rule_unchecked_syscall(const SourceFile& src, std::vector<Finding>& out) {
  const char* probes[] = {"read",   "write",     "pread",     "pwrite",
                          "pread64", "pwrite64", "ftruncate", "fsync",
                          "fdatasync"};
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& code = src.code[i];
    for (const char* probe : probes) {
      bool flagged = false;
      for (std::size_t at : find_calls(code, probe, /*require_paren=*/true)) {
        // Walk left past an optional `::` qualifier.
        std::size_t p = at;
        while (p > 0 && code[p - 1] == ' ') --p;
        if (p >= 2 && code[p - 1] == ':' && code[p - 2] == ':') p -= 2;
        while (p > 0 && code[p - 1] == ' ') --p;
        // The call discards its result only when it begins a statement: the
        // previous code character (possibly on an earlier line) must close a
        // statement or open a block.
        char before = '\0';
        if (p > 0) {
          before = code[p - 1];
        } else {
          for (std::size_t j = i; j-- > 0;) {
            const std::size_t last = src.code[j].find_last_not_of(" \t");
            if (last != std::string::npos) {
              before = src.code[j][last];
              break;
            }
          }
        }
        if (before != '\0' && before != ';' && before != '{' && before != '}') {
          continue;
        }
        add_finding(src, out, i, "unchecked-syscall",
                    std::string("discarded result of ") + probe +
                        "(): a short or failed call goes unnoticed — check "
                        "it, or cast to (void) with a justification");
        flagged = true;
        break;
      }
      if (flagged) break;
    }
  }
}

// Zero-copy contract (DESIGN.md §13): every sink on the record path has a
// bulk span overload — SpillWriter::append(span), MetricAggregator::add(span),
// SlidingWindowMetrics::add(span), vector range-insert. A range-for over an
// IoRecord span whose whole body is one unconditional push_back/add/append of
// the loop variable re-introduces exactly the per-record cost the span
// substrate removed; hand the span to the sink instead. Loops that filter,
// transform, or do anything else per record are untouched.
void rule_record_copy_loop(const SourceFile& src, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const auto keys = find_calls(src.code[i], "for", /*require_paren=*/true);
    if (keys.empty()) continue;
    // Join the for-header and its first body statement into one string; the
    // find_calls hit indexes line i, which is also joined's first segment.
    std::string joined;
    for (std::size_t j = i; j < src.code.size() && j < i + 6; ++j) {
      joined += src.code[j];
      joined += ' ';
    }
    const std::size_t open = joined.find('(', keys.front());
    if (open == std::string::npos) continue;
    std::size_t depth = 1;
    std::size_t close = open + 1;
    while (close < joined.size() && depth > 0) {
      if (joined[close] == '(') ++depth;
      if (joined[close] == ')') --depth;
      ++close;
    }
    if (depth != 0) continue;
    --close;  // index of the matching ')'
    const std::string header = joined.substr(open + 1, close - open - 1);
    // Range-for over records only: `for (const IoRecord& r : span)`.
    if (header.find("IoRecord") == std::string::npos) continue;
    if (header.find(';') != std::string::npos) continue;  // classic for
    const std::size_t colon = header.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        header[colon - 1] == ':' ||
        (colon + 1 < header.size() && header[colon + 1] == ':')) {
      continue;
    }
    std::size_t ve = colon;
    while (ve > 0 && header[ve - 1] == ' ') --ve;
    std::size_t vb = ve;
    while (vb > 0 && ident_char(header[vb - 1])) --vb;
    const std::string var = header.substr(vb, ve - vb);
    if (var.empty()) continue;
    // The body must be exactly one statement, nothing after it but a
    // closing brace: `{ sink.push_back(r); }` or the braceless form.
    std::string body = joined.substr(close + 1);
    const std::size_t semi = body.find(';');
    if (semi == std::string::npos) continue;
    const std::size_t tail = body.find_first_not_of(" }", semi + 1);
    if (tail != std::string::npos) continue;
    std::string compact;
    for (char c : body.substr(0, semi + 1)) {
      if (c != ' ' && c != '{') compact += c;
    }
    for (const char* method :
         {"push_back", "add", "append", "insert", "ship", "forward"}) {
      for (const char* access : {".", "->"}) {
        const std::string suffix =
            std::string(access) + method + "(" + var + ");";
        if (compact.size() <= suffix.size()) continue;
        if (compact.compare(compact.size() - suffix.size(), suffix.size(),
                            suffix) != 0) {
          continue;
        }
        // The receiver must be a plain object expression — a '(' in it means
        // the copy is conditional (`if (...) out.push_back(r);`) or computed,
        // which this rule leaves alone.
        const std::string recv =
            compact.substr(0, compact.size() - suffix.size());
        if (recv.find('(') != std::string::npos) continue;
        add_finding(src, out, i, "record-copy-loop",
                    std::string("per-record ") + method + "(" + var +
                        ") loop over an IoRecord range; pass the whole span "
                        "to the sink's bulk overload instead");
        return;  // one finding per file is enough to fail the scan
      }
    }
  }
}

const std::map<std::string, RuleFn>& all_rules() {
  static const std::map<std::string, RuleFn> rules = {
      {"iorecord-sort", rule_iorecord_sort},
      {"raw-random", rule_raw_random},
      {"float-blocks", rule_float_blocks},
      {"bare-assert", rule_bare_assert},
      {"mutable-global", rule_mutable_global},
      {"records-materialize", rule_records_materialize},
      {"legacy-run-sweep", rule_legacy_run_sweep},
      {"unchecked-syscall", rule_unchecked_syscall},
      {"record-copy-loop", rule_record_copy_loop},
  };
  return rules;
}

std::vector<Finding> lint_source(const SourceFile& src) {
  std::vector<Finding> findings;
  for (const auto& [name, fn] : all_rules()) fn(src, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return findings;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Lint every file, fanned out over `threads` workers. Output is
/// deterministic regardless of thread count: per-file results land in
/// order-indexed slots and print in input order once all workers join.
int lint_paths(const std::vector<std::string>& files, std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 1;
  }
  threads = std::min(threads, files.size() > 0 ? files.size() : std::size_t{1});

  std::vector<std::vector<Finding>> findings(files.size());
  std::vector<bool> unreadable(files.size(), false);
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= files.size()) return;
      std::ifstream in(files[i], std::ios::binary);
      if (!in) {
        unreadable[i] = true;  // each worker owns its own slots: no race
        continue;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      findings[i] = lint_source(load_source(files[i], buf.str()));
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads > 0 ? threads - 1 : 0);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();

  std::size_t total = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (unreadable[i]) {
      std::fprintf(stderr, "bpsio-lint: cannot open %s\n", files[i].c_str());
      return 2;
    }
    for (const Finding& f : findings[i]) {
      std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.detail.c_str());
      ++total;
    }
  }
  if (total > 0) {
    std::printf("bpsio-lint: %zu violation(s) in %zu file(s) scanned\n", total,
                files.size());
    return 1;
  }
  std::printf("bpsio-lint: clean (%zu files)\n", files.size());
  return 0;
}

// ---------------------------------------------------------------------------
// Self-test: every rule must fire on a synthetic violation, stay quiet on a
// conforming twin, and honor the allow-comment.
// ---------------------------------------------------------------------------

struct SelfCase {
  const char* rule;
  const char* path;     // fake path (rules are path-sensitive)
  const char* bad;      // must produce exactly one finding for `rule`
  const char* good;     // must produce no finding for `rule`
};

const SelfCase kSelfCases[] = {
    {"iorecord-sort", "src/metrics/latency.cpp",
     "void f(std::vector<IoRecord>& v) {\n"
     "  std::sort(v.begin(), v.end(),\n"
     "            [](const IoRecord& a, const IoRecord& b) {\n"
     "              return a.start_ns < b.start_ns;\n"
     "            });\n"
     "}\n",
     // Same sort is fine in the blessed location — checked via path below —
     // and sorting non-record data is fine anywhere.
     "void f(std::vector<double>& v) { std::sort(v.begin(), v.end()); }\n"},
    {"raw-random", "src/device/ssd_model.cpp",
     "int jitter() { return rand() % 7; }\n",
     "int jitter(Rng& rng) { return static_cast<int>(rng.next_u64() % 7); }\n"},
    {"raw-random", "src/device/ssd_model.cpp",
     "double now() { return std::chrono::system_clock::now().time_since_epoch().count(); }\n",
     "SimDuration busy = busy_time(now); // member call named time is fine\n"},
    {"float-blocks", "src/metrics/calculators.cpp",
     "double total_blocks = 0;\n",
     "std::uint64_t total_blocks = 0; double bps = 0;\n"},
    {"bare-assert", "src/sim/simulator.cpp",
     "void f(int x) { assert(x > 0); }\n",
     "void f(int x) { BPSIO_CHECK(x > 0); static_assert(sizeof(int) == 4); }\n"},
    {"mutable-global", "src/common/log.cpp",
     "static int g_counter = 0;\n",
     "static const int g_counter = 0;\n"
     "std::atomic<int> g_hits{0};\n"
     "Mutex g_mu;\n"
     "static std::size_t hardware_threads();\n"},
    {"records-materialize", "src/metrics/foo.cpp",
     "void f(const trace::TraceCollector& c) {\n"
     "  for (const auto& r : c.records()) { use(r); }\n"
     "}\n",
     "void f(const trace::TraceCollector& c) {\n"
     "  auto source = trace::collector_source(c);\n"
     "  const std::uint64_t n = acc.record_count();\n"
     "  std::vector<IoRecord> records;\n"
     "}\n"},
    {"legacy-run-sweep", "src/core/study.cpp",
     "auto r = run_sweep(specs, 5, 42);\n",
     "core::SweepOptions opt;\n"
     "auto r = run_sweep(specs, opt);\n"
     "auto s = run_sweep(specs);\n"},
    {"unchecked-syscall", "src/trace/spill_writer.cpp",
     "void f(int fd, const char* p, size_t n) {\n"
     "  ::write(fd, p, n);\n"
     "}\n",
     // Checked, assigned, or (void)-cast results are all fine, as are
     // stream member calls and function *definitions* named like syscalls.
     "ssize_t write_all(int fd, const char* p, size_t n) {\n"
     "  const ssize_t ret = ::write(fd, p, n);\n"
     "  if (fsync(fd) != 0) return -1;\n"
     "  (void)ftruncate(fd, 0);\n"
     "  out.write(p, n);\n"
     "  return ret;\n"
     "}\n"},
    {"record-copy-loop", "src/agent/server.cpp",
     "void f(std::span<const trace::IoRecord> chunk, SpillWriter& out) {\n"
     "  for (const trace::IoRecord& r : chunk) {\n"
     "    out.append(r);\n"
     "  }\n"
     "}\n",
     // Bulk hand-off, filtered copies, and per-record work other than a bare
     // copy are all fine.
     "void f(std::span<const trace::IoRecord> chunk, SpillWriter& out) {\n"
     "  out.append(chunk);\n"
     "  for (const trace::IoRecord& r : chunk) {\n"
     "    if (r.valid()) kept.push_back(r);\n"
     "  }\n"
     "  for (const trace::IoRecord& r : chunk) blocks += r.blocks;\n"
     "}\n"},
    {"record-copy-loop", "src/collector/server.cpp",
     // The forwarding path has the same bulk contract: ForwardLink::append
     // and friends take whole spans, so a one-record-at-a-time ship loop is
     // the same regression wearing a different method name.
     "void f(std::span<const trace::IoRecord> frame, ForwardLink& link) {\n"
     "  for (const trace::IoRecord& r : frame) {\n"
     "    link.ship(r);\n"
     "  }\n"
     "}\n",
     "void f(std::span<const trace::IoRecord> frame, ForwardLink& link) {\n"
     "  link.append(stream_id, frame);\n"
     "  for (const trace::IoRecord& r : frame) {\n"
     "    if (!r.valid()) link.forward(r);\n"
     "  }\n"
     "}\n"},
};

int self_test() {
  int failures = 0;
  auto count_rule = [](const std::vector<Finding>& fs, const std::string& rule) {
    std::size_t n = 0;
    for (const auto& f : fs) {
      if (f.rule == rule) ++n;
    }
    return n;
  };
  for (const SelfCase& c : kSelfCases) {
    const SourceFile bad = load_source(c.path, c.bad);
    const SourceFile good = load_source(c.path, c.good);
    const std::size_t bad_hits = count_rule(lint_source(bad), c.rule);
    const std::size_t good_hits = count_rule(lint_source(good), c.rule);
    if (bad_hits == 0) {
      std::printf("SELF-TEST FAIL [%s]: rule did not fire on violation\n",
                  c.rule);
      ++failures;
    }
    if (good_hits != 0) {
      std::printf("SELF-TEST FAIL [%s]: rule fired on conforming code\n",
                  c.rule);
      ++failures;
    }
    // An allow-comment line directly above the firing line suppresses it.
    std::vector<Finding> bad_findings = lint_source(bad);
    for (const Finding& f : bad_findings) {
      if (f.rule != c.rule) continue;
      std::vector<std::string> lines = bad.raw;
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(f.line - 1),
                   std::string("// bpsio-lint: allow(") + c.rule + ")");
      std::string joined;
      for (const std::string& l : lines) joined += l + "\n";
      const SourceFile suppressed = load_source(c.path, joined);
      if (count_rule(lint_source(suppressed), c.rule) != 0) {
        std::printf("SELF-TEST FAIL [%s]: allow-comment did not suppress\n",
                    c.rule);
        ++failures;
      }
      break;
    }
  }
  // Path sensitivity: the same IoRecord sort is blessed inside trace/.
  {
    const SourceFile blessed = load_source(
        "src/trace/merge.cpp",
        "void f(std::vector<IoRecord>& v) {\n"
        "  std::sort(v.begin(), v.end(),\n"
        "            [](const IoRecord& a, const IoRecord& b) {\n"
        "              return a.start_ns < b.start_ns;\n"
        "            });\n"
        "}\n");
    if (count_rule(lint_source(blessed), "iorecord-sort") != 0) {
      std::printf("SELF-TEST FAIL [iorecord-sort]: fired in blessed path\n");
      ++failures;
    }
  }
  // Path sensitivity: the source adapters in trace/ may touch .records().
  {
    const SourceFile blessed = load_source(
        "src/trace/record_source.cpp",
        "void f(const TraceCollector& c) {\n"
        "  for (const auto& r : c.records()) { use(r); }\n"
        "}\n");
    if (count_rule(lint_source(blessed), "records-materialize") != 0) {
      std::printf(
          "SELF-TEST FAIL [records-materialize]: fired in blessed path\n");
      ++failures;
    }
  }
  // Comments and strings never trigger rules.
  {
    const SourceFile quiet = load_source(
        "src/metrics/latency.cpp",
        "// assert(false) and rand() in a comment\n"
        "const char* kDoc = \"assert(rand())\";\n");
    if (!lint_source(quiet).empty()) {
      std::printf("SELF-TEST FAIL: comment/string text triggered a rule\n");
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("bpsio-lint self-test: all %zu rules verified\n",
                all_rules().size());
    return 0;
  }
  std::printf("bpsio-lint self-test: %d failure(s)\n", failures);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool run_self_test = false;
  std::string root;
  long long threads = 0;
  bpsio::cli::ArgParser parser(
      "bpsio_lint",
      "Repo-specific static checks for the BPS metric pipeline\n"
      "(see docs/STATIC_ANALYSIS.md).");
  parser.positionals("[<files...>]");
  parser.add_flag("--self-test", &run_self_test,
                  "prove every rule fires and is suppressible");
  parser.add_string("--root", &root, "DIR", "lint all .cpp/.hpp under DIR");
  parser.add_int("--threads", &threads, 0, 4096, "N",
                 "worker threads (0 = all cores; output order is "
                 "thread-count independent)");

  std::vector<std::string> files;
  switch (parser.parse(argc, argv, files)) {
    case bpsio::cli::ArgParser::Outcome::ok:
      break;
    case bpsio::cli::ArgParser::Outcome::help:
      return 0;
    case bpsio::cli::ArgParser::Outcome::error:
      return 2;
  }
  if (run_self_test) return self_test();
  if (!root.empty()) {
    const std::vector<std::string> found = collect_files(root);
    files.insert(files.end(), found.begin(), found.end());
  }
  if (files.empty()) {
    std::fputs(parser.usage().c_str(), stderr);
    return 2;
  }
  return lint_paths(files, static_cast<std::size_t>(threads));
}
