#include "trace/frame.hpp"

#include <cstring>

#include "common/check.hpp"

namespace bpsio::trace {
namespace {

/// Hello payloads are zero-padded so every later frame payload stays
/// 8-aligned inside the connection buffer (the zero-copy fast path).
std::size_t padded_tenant_len(std::uint32_t tenant_len) {
  return (std::size_t{tenant_len} + 7) & ~std::size_t{7};
}

bool tenant_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == ':' ||
         c == '-';
}

}  // namespace

bool valid_tenant(std::string_view tenant) {
  if (tenant.empty() || tenant.size() > kMaxTenantLen) return false;
  for (char c : tenant) {
    if (!tenant_char(c)) return false;
  }
  return true;
}

void encode_frame(std::span<const IoRecord> records, std::vector<char>& out) {
  FrameHeader header;
  header.record_count = static_cast<std::uint32_t>(records.size());
  const std::size_t payload = records.size() * sizeof(IoRecord);
  const std::size_t at = out.size();
  out.resize(at + sizeof header + payload);
  std::memcpy(out.data() + at, &header, sizeof header);
  if (payload > 0) {
    std::memcpy(out.data() + at + sizeof header, records.data(), payload);
  }
}

void encode_tagged_frame(std::uint64_t stream_id,
                         std::span<const IoRecord> records,
                         std::vector<char>& out) {
  TaggedFrameHeader header;
  header.record_count = static_cast<std::uint32_t>(records.size());
  header.stream_id = stream_id;
  const std::size_t payload = records.size() * sizeof(IoRecord);
  const std::size_t at = out.size();
  out.resize(at + sizeof header + payload);
  std::memcpy(out.data() + at, &header, sizeof header);
  if (payload > 0) {
    std::memcpy(out.data() + at + sizeof header, records.data(), payload);
  }
}

void encode_hello(std::string_view tenant, std::vector<char>& out) {
  BPSIO_CHECK(valid_tenant(tenant), "encode_hello: illegal tenant id '%.*s'",
              static_cast<int>(tenant.size()), tenant.data());
  const std::uint32_t magic = kHelloMagic;
  const auto tenant_len = static_cast<std::uint32_t>(tenant.size());
  const std::size_t padded = padded_tenant_len(tenant_len);
  const std::size_t at = out.size();
  out.resize(at + 8 + padded, '\0');
  std::memcpy(out.data() + at, &magic, 4);
  std::memcpy(out.data() + at + 4, &tenant_len, 4);
  std::memcpy(out.data() + at + 8, tenant.data(), tenant.size());
}

void FrameDecoder::poison(std::string message) {
  status_ = Error{Errc::invalid_argument, std::move(message)};
  buf_.clear();
}

std::size_t FrameDecoder::header_size(const char* p) {
  std::uint32_t magic;
  std::memcpy(&magic, p, 4);
  switch (magic) {
    case kFrameMagic:
    case kHelloMagic:
      return sizeof(FrameHeader);
    case kTaggedFrameMagic:
      return sizeof(TaggedFrameHeader);
    default:
      poison("bad frame magic (corrupt or foreign stream)");
      return 0;
  }
}

std::size_t FrameDecoder::frame_size(const char* p) {
  std::uint32_t magic;
  std::uint32_t second;
  std::memcpy(&magic, p, 4);
  std::memcpy(&second, p + 4, 4);
  if (magic == kHelloMagic) {
    if (second == 0 || second > kMaxTenantLen) {
      poison("hello claims a " + std::to_string(second) +
             "-byte tenant id (max " + std::to_string(kMaxTenantLen) +
             "); rejecting stream");
      return 0;
    }
    return sizeof(FrameHeader) + padded_tenant_len(second);
  }
  if (second > kMaxFrameRecords) {
    poison("frame claims " + std::to_string(second) + " records (max " +
           std::to_string(kMaxFrameRecords) + "); rejecting stream");
    return 0;
  }
  const std::size_t header =
      magic == kTaggedFrameMagic ? sizeof(TaggedFrameHeader)
                                 : sizeof(FrameHeader);
  return header + std::size_t{second} * sizeof(IoRecord);
}

void FrameDecoder::emit(const char* payload, std::uint32_t count,
                        std::uint64_t stream, const TaggedFrameSink& sink) {
  if (reinterpret_cast<std::uintptr_t>(payload) % alignof(IoRecord) == 0) {
    sink(stream, {reinterpret_cast<const IoRecord*>(payload), count});
    return;
  }
  // Misaligned payload (headers keep in-place frames aligned, but a caller
  // may feed from an offset buffer): one aligned copy, then a span over the
  // scratch.
  scratch_.resize(count);
  std::memcpy(scratch_.data(), payload, std::size_t{count} * sizeof(IoRecord));
  sink(stream, {scratch_.data(), scratch_.size()});
}

void FrameDecoder::dispatch(const char* p, const TaggedFrameSink& sink) {
  std::uint32_t magic;
  std::memcpy(&magic, p, 4);
  if (magic == kHelloMagic) {
    if (hello_seen_ || frames_ > 0) {
      poison("hello frame after the stream already started");
      return;
    }
    std::uint32_t tenant_len;
    std::memcpy(&tenant_len, p + 4, 4);
    const std::string_view tenant(p + 8, tenant_len);
    if (!valid_tenant(tenant)) {
      poison("hello carries an illegal tenant id; rejecting stream");
      return;
    }
    hello_seen_ = true;
    tenant_.assign(tenant);
    return;
  }
  std::uint32_t count;
  std::memcpy(&count, p + 4, 4);
  std::uint64_t stream = 0;
  std::size_t payload_at = sizeof(FrameHeader);
  if (magic == kTaggedFrameMagic) {
    std::memcpy(&stream, p + 8, 8);
    payload_at = sizeof(TaggedFrameHeader);
  }
  ++frames_;
  if (count > 0) emit(p + payload_at, count, stream, sink);
}

Status FrameDecoder::feed(const char* data, std::size_t n,
                          const TaggedFrameSink& sink) {
  if (!status_.ok()) return status_;
  std::size_t at = 0;

  // Stage 1: a frame left split across feeds — finish buffering it and emit
  // from the (aligned) internal buffer. Header length depends on the magic,
  // so the buffer grows in up to three steps: magic, full header, full frame.
  if (!buf_.empty()) {
    if (buf_.size() < 4) {
      const std::size_t take = std::min(std::size_t{4} - buf_.size(), n);
      buf_.insert(buf_.end(), data, data + take);
      at += take;
      if (buf_.size() < 4) return status_;
    }
    const std::size_t header = header_size(buf_.data());
    if (header == 0) return status_;
    if (buf_.size() < header) {
      const std::size_t take = std::min(header - buf_.size(), n - at);
      buf_.insert(buf_.end(), data + at, data + at + take);
      at += take;
      if (buf_.size() < header) return status_;
    }
    const std::size_t total = frame_size(buf_.data());
    if (total == 0) return status_;
    if (buf_.size() < total) {
      const std::size_t take = std::min(total - buf_.size(), n - at);
      buf_.insert(buf_.end(), data + at, data + at + take);
      at += take;
      if (buf_.size() < total) return status_;
    }
    dispatch(buf_.data(), sink);
    buf_.clear();
    if (!status_.ok()) return status_;
  }

  // Stage 2: frames lying wholly inside `data` — emitted without entering
  // the internal buffer at all (zero copy when the payload is aligned).
  while (n - at >= 4) {
    const std::size_t header = header_size(data + at);
    if (header == 0) return status_;
    if (n - at < header) break;  // incomplete header tail
    const std::size_t total = frame_size(data + at);
    if (total == 0) return status_;
    if (n - at < total) break;  // incomplete frame tail
    dispatch(data + at, sink);
    if (!status_.ok()) return status_;
    at += total;
  }

  // Stage 3: stash the partial tail for the next feed.
  buf_.insert(buf_.end(), data + at, data + n);
  return status_;
}

Status FrameDecoder::feed(const char* data, std::size_t n,
                          const FrameSink& sink) {
  return feed(data, n,
              TaggedFrameSink([&sink](std::uint64_t,
                                      std::span<const IoRecord> frame) {
                sink(frame);
              }));
}

}  // namespace bpsio::trace
