#include "trace/trace_buffer.hpp"

namespace bpsio::trace {

void TraceBuffer::record(std::uint64_t blocks, SimTime start, SimTime end,
                         IoOpKind op, std::uint8_t flags) {
  push(make_record(pid_, blocks, start, end, op, flags));
}

void TraceBuffer::push(IoRecord r) {
  r.pid = pid_;
  records_.push_back(r);
}

std::uint64_t TraceBuffer::total_blocks() const {
  std::uint64_t sum = 0;
  for (const auto& r : records_) sum += r.blocks;
  return sum;
}

}  // namespace bpsio::trace
