// Figure 6 — Set 2 on SSD: record size swept 4 KB..8 MB.
#include "figure_bench.hpp"

int main(int argc, char** argv) {
  return bpsio::bench::run_figure_main(
      "Figure 6: CC values, various I/O sizes, SSD",
      "BW and BPS correct and strong (~0.90); IOPS and ARPT flip direction",
      bpsio::core::figures::fig6_iosize_ssd, argc, argv);
}
