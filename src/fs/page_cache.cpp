#include "fs/page_cache.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace bpsio::fs {

PageCache::PageCache(Bytes capacity, Bytes page_size) : page_size_(page_size) {
  BPSIO_CHECK(page_size_ > 0, "page cache needs a positive page size");
  capacity_pages_ = static_cast<std::size_t>(capacity / page_size_);
  if (capacity_pages_ == 0) capacity_pages_ = 1;
}

std::vector<PageRun> PageCache::probe(std::uint32_t file_id,
                                      std::uint64_t first_page,
                                      std::uint64_t count) {
  std::vector<PageRun> misses;
  std::uint64_t run_start = 0;
  bool in_run = false;
  for (std::uint64_t p = first_page; p < first_page + count; ++p) {
    const auto it = map_.find(make_key(file_id, p));
    if (it != map_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      if (in_run) {
        misses.push_back(PageRun{file_id, run_start, p - run_start});
        in_run = false;
      }
    } else {
      ++stats_.misses;
      if (!in_run) {
        run_start = p;
        in_run = true;
      }
    }
  }
  if (in_run) {
    misses.push_back(PageRun{file_id, run_start, first_page + count - run_start});
  }
  return misses;
}

bool PageCache::contains(std::uint32_t file_id, std::uint64_t first_page,
                         std::uint64_t count) {
  return probe(file_id, first_page, count).empty();
}

void PageCache::evict_one(std::vector<Key>& dirty_out) {
  BPSIO_CHECK(!lru_.empty(), "evict_one on empty cache");
  const Key victim = lru_.back();
  lru_.pop_back();
  const auto it = map_.find(victim);
  BPSIO_DCHECK(it != map_.end(), "LRU key missing from page map");
  ++stats_.evictions;
  if (it->second.dirty) {
    ++stats_.dirty_evictions;
    dirty_out.push_back(victim);
  }
  map_.erase(it);
}

std::vector<PageRun> PageCache::keys_to_runs(std::vector<Key> keys) {
  std::sort(keys.begin(), keys.end());
  std::vector<PageRun> runs;
  for (const Key k : keys) {
    if (!runs.empty() && runs.back().file_id == key_file(k) &&
        runs.back().first_page + runs.back().page_count == key_page(k)) {
      ++runs.back().page_count;
    } else {
      runs.push_back(PageRun{key_file(k), key_page(k), 1});
    }
  }
  return runs;
}

std::vector<PageRun> PageCache::insert(std::uint32_t file_id,
                                       std::uint64_t first_page,
                                       std::uint64_t count, bool dirty) {
  std::vector<Key> evicted_dirty;
  for (std::uint64_t p = first_page; p < first_page + count; ++p) {
    const Key key = make_key(file_id, p);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      it->second.dirty = it->second.dirty || dirty;
      continue;
    }
    while (map_.size() >= capacity_pages_) evict_one(evicted_dirty);
    lru_.push_front(key);
    map_.emplace(key, Entry{lru_.begin(), dirty});
    ++stats_.insertions;
  }
  return keys_to_runs(std::move(evicted_dirty));
}

std::vector<PageRun> PageCache::collect_dirty() {
  std::vector<Key> dirty;
  for (auto& [key, entry] : map_) {
    if (entry.dirty) {
      entry.dirty = false;
      dirty.push_back(key);
    }
  }
  return keys_to_runs(std::move(dirty));
}

void PageCache::invalidate_all() {
  lru_.clear();
  map_.clear();
}

void PageCache::invalidate_file(std::uint32_t file_id) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (key_file(it->first) == file_id) {
      lru_.erase(it->second.lru_pos);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace bpsio::fs
