#include "device/block_device.hpp"

namespace bpsio::device {

void BlockDevice::account(DevOp op, Bytes size, bool ok, SimDuration busy) {
  if (op == DevOp::read) {
    ++stats_.read_ops;
    if (ok) stats_.bytes_read += size;
  } else {
    ++stats_.write_ops;
    if (ok) stats_.bytes_written += size;
  }
  if (!ok) ++stats_.failed_ops;
  stats_.busy_time += busy;
}

}  // namespace bpsio::device
