#include "bench/bench_json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <variant>

namespace bpsio::bench {

namespace {

// ---------------------------------------------------------------------------
// Writer. Doubles are printed with %.17g so a write/parse round trip is
// value-exact; strings in our schema are identifiers/paths, escaped anyway.

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  // JSON has no Infinity/NaN; an unconverged interval can legitimately be
  // infinite, so encode those as very-large-magnitude sentinels.
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Parser: a small recursive-descent JSON reader covering the full grammar
// (objects, arrays, strings, numbers, true/false/null) so field order and
// unknown extra keys never matter.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_bool() const { return std::holds_alternative<bool>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> parse() {
    auto value = parse_value();
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Error fail(const std::string& why) const {
    return Error{Errc::invalid_argument,
                 "JSON parse error at offset " + std::to_string(pos_) + ": " +
                     why};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s.ok()) return s.error();
      return JsonValue{*std::move(s)};
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue{true};
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue{false};
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{nullptr};
    }
    return parse_number();
  }

  Result<JsonValue> parse_object() {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (eat('}')) return JsonValue{std::move(obj)};
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      auto key = parse_string();
      if (!key.ok()) return key.error();
      if (!eat(':')) return fail("expected ':' after object key");
      auto value = parse_value();
      if (!value.ok()) return value;
      obj[*std::move(key)] = *std::move(value);
      if (eat(',')) continue;
      if (eat('}')) return JsonValue{std::move(obj)};
      return fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> parse_array() {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (eat(']')) return JsonValue{std::move(arr)};
    while (true) {
      auto value = parse_value();
      if (!value.ok()) return value;
      arr.push_back(*std::move(value));
      if (eat(',')) continue;
      if (eat(']')) return JsonValue{std::move(arr)};
      return fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // Schema strings are ASCII; keep it simple outside the BMP-ASCII
          // range by emitting UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return fail("unknown escape sequence");
      }
    }
    return fail("unterminated string");
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    return JsonValue{parsed};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// Field extraction helpers: every required key either yields its value or a
// named error.

Result<double> need_number(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  if (it == obj.end() || !it->second.is_number()) {
    return Error{Errc::invalid_argument, "missing numeric field '" + key + "'"};
  }
  return std::get<double>(it->second.v);
}

Result<std::string> need_string(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  if (it == obj.end() || !it->second.is_string()) {
    return Error{Errc::invalid_argument, "missing string field '" + key + "'"};
  }
  return std::get<std::string>(it->second.v);
}

Result<bool> need_bool(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  if (it == obj.end() || !it->second.is_bool()) {
    return Error{Errc::invalid_argument, "missing boolean field '" + key + "'"};
  }
  return std::get<bool>(it->second.v);
}

}  // namespace

std::string to_json(const BenchRecord& r) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": " << r.schema_version << ",\n";
  out << "  \"name\": \"" << escape(r.name) << "\",\n";
  out << "  \"unit\": \"" << escape(r.unit) << "\",\n";
  out << "  \"git_sha\": \"" << escape(r.git_sha) << "\",\n";
  out << "  \"seed\": " << r.seed << ",\n";
  out << "  \"threads\": " << r.threads << ",\n";
  out << "  \"confidence\": " << num(r.confidence) << ",\n";
  out << "  \"target_rel_half_width\": " << num(r.target_rel_half_width)
      << ",\n";
  out << "  \"converged\": " << (r.converged ? "true" : "false") << ",\n";
  out << "  \"samples_collected\": " << r.samples_collected << ",\n";
  out << "  \"warmup_discarded\": " << r.warmup_discarded << ",\n";
  out << "  \"samples_used\": " << r.samples_used << ",\n";
  out << "  \"mean\": " << num(r.mean) << ",\n";
  out << "  \"stddev\": " << num(r.stddev) << ",\n";
  out << "  \"ci_lo\": " << num(r.ci_lo) << ",\n";
  out << "  \"ci_hi\": " << num(r.ci_hi) << ",\n";
  out << "  \"rel_half_width\": " << num(r.rel_half_width) << ",\n";
  out << "  \"lag1_autocorr\": " << num(r.lag1_autocorr) << ",\n";
  out << "  \"ess\": " << num(r.ess) << ",\n";
  out << "  \"config\": {";
  bool first = true;
  for (const auto& [key, value] : r.config) {
    out << (first ? "\n" : ",\n") << "    \"" << escape(key) << "\": \""
        << escape(value) << "\"";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";
  out << "  \"samples_raw\": [";
  first = true;
  for (const double s : r.samples_raw) {
    out << (first ? "" : ", ") << num(s);
    first = false;
  }
  out << "]\n";
  out << "}\n";
  return out.str();
}

Result<BenchRecord> parse_bench_json(const std::string& text) {
  JsonParser parser(text);
  auto doc = parser.parse();
  if (!doc.ok()) return doc.error();
  if (!doc->is_object()) {
    return Error{Errc::invalid_argument, "bench record must be a JSON object"};
  }
  const auto& obj = std::get<JsonObject>(doc->v);

  auto version = need_number(obj, "schema_version");
  if (!version.ok()) return version.error();
  if (static_cast<int>(*version) != kBenchSchemaVersion) {
    return Error{Errc::unsupported,
                 "unknown bench schema_version " +
                     std::to_string(static_cast<int>(*version)) +
                     " (this build understands " +
                     std::to_string(kBenchSchemaVersion) + ")"};
  }

  BenchRecord r;
  r.schema_version = static_cast<int>(*version);

  auto name = need_string(obj, "name");
  if (!name.ok()) return name.error();
  r.name = *name;
  auto unit = need_string(obj, "unit");
  if (!unit.ok()) return unit.error();
  r.unit = *unit;
  auto sha = need_string(obj, "git_sha");
  if (!sha.ok()) return sha.error();
  r.git_sha = *sha;

  auto converged = need_bool(obj, "converged");
  if (!converged.ok()) return converged.error();
  r.converged = *converged;

  const struct {
    const char* key;
    double* target;
  } doubles[] = {
      {"confidence", &r.confidence},
      {"target_rel_half_width", &r.target_rel_half_width},
      {"mean", &r.mean},
      {"stddev", &r.stddev},
      {"ci_lo", &r.ci_lo},
      {"ci_hi", &r.ci_hi},
      {"rel_half_width", &r.rel_half_width},
      {"lag1_autocorr", &r.lag1_autocorr},
      {"ess", &r.ess},
  };
  for (const auto& field : doubles) {
    auto value = need_number(obj, field.key);
    if (!value.ok()) return value.error();
    *field.target = *value;
  }

  const struct {
    const char* key;
    std::uint64_t* target;
  } counts[] = {
      {"seed", &r.seed},
      {"samples_collected", &r.samples_collected},
      {"warmup_discarded", &r.warmup_discarded},
      {"samples_used", &r.samples_used},
  };
  for (const auto& field : counts) {
    auto value = need_number(obj, field.key);
    if (!value.ok()) return value.error();
    *field.target = static_cast<std::uint64_t>(*value);
  }
  auto threads = need_number(obj, "threads");
  if (!threads.ok()) return threads.error();
  r.threads = static_cast<int>(*threads);

  if (const auto it = obj.find("config");
      it != obj.end() && it->second.is_object()) {
    for (const auto& [key, value] : std::get<JsonObject>(it->second.v)) {
      if (value.is_string()) r.config[key] = std::get<std::string>(value.v);
    }
  }
  if (const auto it = obj.find("samples_raw");
      it != obj.end() && it->second.is_array()) {
    for (const auto& value : std::get<JsonArray>(it->second.v)) {
      if (value.is_number()) r.samples_raw.push_back(std::get<double>(value.v));
    }
  }
  return r;
}

std::string bench_file_name(const std::string& name) {
  return "BENCH_" + name + ".json";
}

Status write_bench_record(const std::string& dir, const BenchRecord& record) {
  namespace fs = std::filesystem;
  fs::path path = dir.empty() ? fs::path(".") : fs::path(dir);
  std::error_code ec;
  fs::create_directories(path, ec);  // best-effort; open failure reports below
  path /= bench_file_name(record.name);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Error{Errc::io_error, "cannot open " + path.string() + " for write"};
  }
  out << to_json(record);
  out.flush();
  if (!out) {
    return Error{Errc::io_error, "short write to " + path.string()};
  }
  return {};
}

Result<std::map<std::string, BenchRecord>> load_bench_records(
    const std::string& path) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      const std::string file = entry.path().filename().string();
      if (file.starts_with("BENCH_") && file.ends_with(".json")) {
        files.push_back(entry.path());
      }
    }
    if (ec) {
      return Error{Errc::io_error, path + ": " + ec.message()};
    }
  } else if (fs::exists(path, ec)) {
    files.emplace_back(path);
  } else {
    return Error{Errc::not_found, path + ": no such file or directory"};
  }

  std::map<std::string, BenchRecord> records;
  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) {
      return Error{Errc::io_error, "cannot read " + file.string()};
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto record = parse_bench_json(text.str());
    if (!record.ok()) {
      return Error{record.error().code,
                   file.string() + ": " + record.error().message};
    }
    records[record->name] = *std::move(record);
  }
  return records;
}

}  // namespace bpsio::bench
