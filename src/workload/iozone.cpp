#include "workload/iozone.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"

namespace bpsio::workload {

RunResult run_processes(Env& env,
                        std::vector<std::unique_ptr<Process>>& processes,
                        SimTime t0) {
  for (auto& p : processes) {
    p->start([]() {});
  }
  env.sim->run();

  RunResult result;
  result.process_count = static_cast<std::uint32_t>(processes.size());
  SimTime last = t0;
  for (auto& p : processes) {
    if (!p->finished()) {
      // The event queue drained with this process still mid-operation — a
      // lost completion somewhere in the stack. Surface it loudly instead
      // of reporting a bogus finish time.
      BPSIO_ERROR("process %u never finished (%llu ops done) — "
                  "simulation deadlock?",
                  p->pid(),
                  static_cast<unsigned long long>(p->ops_completed()));
      result.finish_times.push_back(env.sim->now());
      last = max(last, env.sim->now());
      result.collector.gather(p->io().trace());
      continue;
    }
    result.collector.gather(p->io().trace());
    result.finish_times.push_back(p->finish_time());
    last = max(last, p->finish_time());
  }
  result.exec_time = last - t0;
  return result;
}

RunResult IozoneWorkload::run(Env& env) {
  BPSIO_CHECK(env.sim && !env.nodes.empty(),
              "workload environment needs a simulator and client nodes");
  const SimTime t0 = env.sim->now();
  const std::uint32_t nprocs = config_.processes;
  const Bytes per_proc = config_.size_is_total && nprocs > 0
                             ? config_.file_size / nprocs
                             : config_.file_size;
  Rng rng(config_.seed);
  std::vector<std::unique_ptr<Process>> processes;
  processes.reserve(nprocs);

  for (std::uint32_t p = 0; p < nprocs; ++p) {
    const std::size_t node = p % env.node_count();
    auto proc = std::make_unique<Process>(*env.nodes[node],
                                          *env.backends[node], p + 1,
                                          env.block_size);
    if (config_.prefetch) proc->io().enable_prefetch(*config_.prefetch);

    // File setup (untimed): pure writes start from an empty file; every
    // other mode needs the data to pre-exist.
    const std::string path =
        config_.separate_files ? config_.path_prefix + "." + std::to_string(p)
                               : config_.path_prefix;
    const Bytes initial =
        (config_.mode == IozoneConfig::Mode::write) ? 0 : per_proc;
    Result<fs::FileHandle> handle = [&]() -> Result<fs::FileHandle> {
      if (config_.separate_files || p == 0) {
        return proc->io().create(path, initial);
      }
      return proc->io().open(path);
    }();
    if (!handle) {
      BPSIO_ERROR("iozone: cannot set up %s: %s", path.c_str(),
                  handle.error().to_string().c_str());
      continue;
    }
    proc->set_file(*handle);

    const auto accessed = static_cast<Bytes>(
        static_cast<double>(per_proc) * config_.access_fraction);
    std::vector<AppOp> ops;
    switch (config_.mode) {
      case IozoneConfig::Mode::read:
        ops = sequential_ops(AppOp::Kind::read, accessed, config_.record_size);
        break;
      case IozoneConfig::Mode::write:
      case IozoneConfig::Mode::rewrite:
        ops = sequential_ops(AppOp::Kind::write, accessed, config_.record_size);
        break;
      case IozoneConfig::Mode::reread: {
        ops = sequential_ops(AppOp::Kind::read, accessed, config_.record_size);
        auto second = ops;
        ops.insert(ops.end(), second.begin(), second.end());
        break;
      }
      case IozoneConfig::Mode::mixed: {
        ops = sequential_ops(AppOp::Kind::read, accessed, config_.record_size);
        for (std::size_t k = 1; k < ops.size(); k += 2) {
          ops[k].kind = AppOp::Kind::write;
        }
        break;
      }
      case IozoneConfig::Mode::backward_read: {
        ops = sequential_ops(AppOp::Kind::read, accessed, config_.record_size);
        std::reverse(ops.begin(), ops.end());
        break;
      }
      case IozoneConfig::Mode::stride_read: {
        const Bytes stride =
            config_.stride ? config_.stride : 2 * config_.record_size;
        const std::uint64_t count = accessed / std::max<Bytes>(stride, 1);
        ops = strided_ops(AppOp::Kind::read, 0, stride, config_.record_size,
                          count);
        break;
      }
      case IozoneConfig::Mode::random_read:
      case IozoneConfig::Mode::random_write: {
        const std::uint64_t count =
            config_.random_count
                ? config_.random_count
                : per_proc / std::max<Bytes>(config_.record_size, 1);
        Rng proc_rng = rng.fork();
        ops = random_ops(config_.mode == IozoneConfig::Mode::random_read
                             ? AppOp::Kind::read
                             : AppOp::Kind::write,
                         per_proc, config_.record_size, count, proc_rng);
        break;
      }
    }
    proc->set_ops(std::move(ops));
    proc->set_think_time(config_.think);
    processes.push_back(std::move(proc));
  }
  return run_processes(env, processes, t0);
}

}  // namespace bpsio::workload
