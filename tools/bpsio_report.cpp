// bpsio_report — BPS analysis of captured .bpstrace files.
//
// The read side of the real-I/O capture subsystem: point it at the
// BPSIO_CAPTURE_DIR a traced run filled (or at individual trace files) and
// it k-way merges the per-thread traces with MergedSource, streams the
// merged sequence through measure_stream(), and prints the paper's metrics:
//
//   B     application-required blocks (Section III.A — requested blocks,
//         failed and short I/O included)
//   T     overlapped I/O time (Figure 3 union measure)
//   BPS   B / T
//   IOPS  accesses / period
//   BW    application bytes / period. NOTE: real traces carry no FS-level
//         moved-byte counters, so unlike the simulator's bandwidth this is
//         an app-side figure (the paper's Figure 12 distinction).
//   ARPT  mean response time
//
// Usage:
//   bpsio_report <file-or-dir>... [options]
//     --block-size=BYTES  block unit the traces were captured with
//                         (BPSIO_CAPTURE_BLOCK_SIZE; default 512). Only
//                         byte-denominated outputs depend on it.
//     --exec-time=SECS    period for IOPS/BW (default: the trace span)
//     --align             align each trace's start to t=0 (traces from
//                         different machines / boots; same-boot captures
//                         share CLOCK_MONOTONIC and should keep timestamps)
//     --pid-stride=N      remap pids per source file (default 0: captured
//                         traces carry real, already-distinct pids)
//     --per-pid           per-process table
//     --window=MS         windowed BPS timeline with MS-millisecond windows
//                         (--timeline=MS is the older spelling, kept as an
//                         alias)
//     --csv               machine-readable single-row output
//
// Memory stays O(chunk * files): everything is open_trace_source (mmap
// spans when the platform allows, SpilledTraceSource otherwise) ->
// MergedSource -> single-pass consumers; no trace is ever materialized.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "cli.hpp"
#include "common/config.hpp"
#include "common/format.hpp"
#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "metrics/pipeline.hpp"
#include "metrics/timeline.hpp"
#include "trace/mapped_source.hpp"
#include "trace/record_source.hpp"

namespace bpsio {
namespace {

struct Options {
  std::vector<std::string> inputs;
  Bytes block_size = kDefaultBlockSize;
  std::optional<double> exec_time_s;
  bool align = false;
  std::uint32_t pid_stride = 0;
  bool per_pid = false;
  std::optional<double> timeline_ms;
  bool csv = false;
};

/// Builds the shared-parser option table over `opt`. Returns the parser so
/// main() can report usage.
cli::ArgParser make_parser(Options& opt) {
  cli::ArgParser parser("bpsio_report",
                        "BPS analysis of captured .bpstrace files.");
  parser.positionals("<trace-file-or-dir>...");
  parser.add_value("--block-size", "BYTES",
                   "block unit the traces were captured with (default 512)",
                   [&opt](const std::string& v) {
                     const auto parsed = Config::parse_bytes(v);
                     if (!parsed || *parsed == 0) return false;
                     opt.block_size = *parsed;
                     return true;
                   });
  parser.add_value("--exec-time", "SECS",
                   "period for IOPS/BW (default: the trace span)",
                   [&opt](const std::string& v) {
                     char* end = nullptr;
                     const double secs = std::strtod(v.c_str(), &end);
                     if (end == nullptr || *end != '\0' || secs <= 0) {
                       return false;
                     }
                     opt.exec_time_s = secs;
                     return true;
                   });
  parser.add_value("--pid-stride", "N",
                   "remap pids per source file (default 0: keep real pids)",
                   [&opt](const std::string& v) {
                     char* end = nullptr;
                     const long stride = std::strtol(v.c_str(), &end, 10);
                     if (end == nullptr || *end != '\0' || stride < 0) {
                       return false;
                     }
                     opt.pid_stride = static_cast<std::uint32_t>(stride);
                     return true;
                   });
  const auto set_window = [&opt](const std::string& v) {
    char* end = nullptr;
    const double ms = std::strtod(v.c_str(), &end);
    if (end == nullptr || *end != '\0' || ms <= 0) return false;
    opt.timeline_ms = ms;
    return true;
  };
  parser.add_value("--window", "MS",
                   "windowed BPS timeline with MS-millisecond windows",
                   set_window);
  parser.add_value("--timeline", "MS", "alias of --window (older spelling)",
                   set_window);
  parser.add_flag("--align", &opt.align,
                  "align each trace's start to t=0 (different clocks)");
  parser.add_flag("--per-pid", &opt.per_pid, "per-process table");
  parser.add_flag("--csv", &opt.csv, "machine-readable single-row output");
  return parser;
}

/// Expand each input: directories contribute every *.bpstrace inside them
/// (sorted, for deterministic merge tie-breaking), files pass through.
Result<std::vector<std::string>> expand_inputs(
    const std::vector<std::string>& inputs) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      std::vector<std::string> found;
      for (const auto& entry : fs::directory_iterator(input, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".bpstrace") {
          found.push_back(entry.path().string());
        }
      }
      if (ec) {
        return Error{Errc::io_error, "cannot scan directory " + input};
      }
      if (found.empty()) {
        return Error{Errc::not_found, "no .bpstrace files in " + input};
      }
      std::sort(found.begin(), found.end());
      paths.insert(paths.end(), found.begin(), found.end());
    } else if (fs::is_regular_file(input, ec)) {
      paths.push_back(input);
    } else {
      return Error{Errc::not_found, input + " is not a file or directory"};
    }
  }
  return paths;
}

/// Everything the single pass observes beyond measure_stream's sample: the
/// stream span, per-pid aggregates, and the optional timeline. Implemented
/// as a RecordSource shim so one pull over the merged stream feeds
/// measure_stream and these observers simultaneously.
class ObservingSource final : public trace::RecordSource {
 public:
  struct PidStats {
    std::uint64_t records = 0;
    std::uint64_t blocks = 0;
    std::int64_t response_ns = 0;
    std::int64_t busy_ns = 0;  ///< per-pid overlapped I/O time
    metrics::detail::IntervalSweep sweep;

    PidStats() {
      sweep.on_segment = [this](std::int64_t t0, std::int64_t t1,
                                std::size_t) { busy_ns += t1 - t0; };
    }
    PidStats(const PidStats&) = delete;
    PidStats& operator=(const PidStats&) = delete;
  };

  ObservingSource(trace::RecordSource& inner, bool want_per_pid,
                  metrics::TimelineConsumer* timeline)
      : inner_(&inner), want_per_pid_(want_per_pid), timeline_(timeline) {}

  std::span<const trace::IoRecord> next_chunk() override {
    const std::span<const trace::IoRecord> chunk = inner_->next_chunk();
    if (timeline_ != nullptr && !chunk.empty()) timeline_->consume(chunk);
    for (const trace::IoRecord& r : chunk) {
      if (!any_) {
        lo_ns_ = r.start_ns;
        hi_ns_ = r.end_ns;
        any_ = true;
      }
      hi_ns_ = std::max(hi_ns_, r.end_ns);
      seen_pids_.insert(r.pid);
      if (want_per_pid_) {
        // The global stream is (start, end)-ordered, so each pid's
        // subsequence is too — the per-pid sweeps see ordered input.
        PidStats& stats = pids_[r.pid];
        ++stats.records;
        stats.blocks += r.blocks;
        stats.response_ns += r.end_ns - r.start_ns;
        if (r.end_ns > r.start_ns) stats.sweep.add(r.start_ns, r.end_ns);
      }
    }
    return chunk;
  }

  std::optional<std::uint64_t> size_hint() const override {
    return inner_->size_hint();
  }
  Status status() const override { return inner_->status(); }

  bool any() const { return any_; }
  std::int64_t lo_ns() const { return lo_ns_; }
  std::int64_t hi_ns() const { return hi_ns_; }
  std::size_t process_count() const { return seen_pids_.size(); }
  SimDuration span() const {
    return SimDuration(any_ ? hi_ns_ - lo_ns_ : 0);
  }
  /// Ordered by pid for stable output (finishes the sweeps).
  std::map<std::uint32_t, PidStats>& pids() {
    for (auto& [pid, stats] : pids_) stats.sweep.finish();
    return pids_;
  }

 private:
  trace::RecordSource* inner_;
  bool want_per_pid_;
  metrics::TimelineConsumer* timeline_;
  bool any_ = false;
  std::int64_t lo_ns_ = 0;
  std::int64_t hi_ns_ = 0;
  std::unordered_set<std::uint32_t> seen_pids_;
  std::map<std::uint32_t, PidStats> pids_;
};

int run_report(const Options& opt) {
  const auto paths = expand_inputs(opt.inputs);
  if (!paths.ok()) {
    std::fprintf(stderr, "bpsio_report: %s\n",
                 paths.error().to_string().c_str());
    return 2;
  }

  std::vector<std::unique_ptr<trace::RecordSource>> children;
  children.reserve(paths->size());
  for (const std::string& path : *paths) {
    auto source = trace::open_trace_source(path);
    if (!source->status().ok()) {
      std::fprintf(stderr, "bpsio_report: %s: %s\n", path.c_str(),
                   source->status().to_string().c_str());
      return 2;
    }
    children.push_back(std::move(source));
  }

  trace::MergeOptions merge;
  merge.alignment = opt.align ? trace::TimeAlignment::align_starts
                              : trace::TimeAlignment::keep;
  merge.pid_stride = opt.pid_stride;
  trace::MergedSource merged(std::move(children), merge);

  std::optional<metrics::TimelineConsumer> timeline;
  if (opt.timeline_ms) {
    timeline.emplace(SimDuration(
        static_cast<std::int64_t>(*opt.timeline_ms * 1'000'000.0)));
  }
  ObservingSource observed(merged, opt.per_pid,
                           timeline ? &*timeline : nullptr);

  const SimDuration exec_time =
      opt.exec_time_s ? SimDuration(static_cast<std::int64_t>(
                            *opt.exec_time_s * 1'000'000'000.0))
                      : SimDuration(0);
  // Records already store blocks in the capture unit; leave measure_stream
  // at the default block size so it does not rescale. Byte figures are
  // derived below from the actual capture block size.
  const auto sample_result =
      metrics::measure_stream(observed, /*moved_bytes=*/0, exec_time);
  if (!sample_result.ok()) {
    std::fprintf(stderr, "bpsio_report: %s\n",
                 sample_result.error().to_string().c_str());
    return 2;
  }
  metrics::MetricSample sample = *sample_result;
  if (timeline) timeline->finish();

  // Derived figures the sample cannot know: the period (span unless
  // overridden) and byte values in the capture block unit.
  const double span_s = observed.span().seconds();
  const double period_s = opt.exec_time_s.value_or(span_s);
  const Bytes app_bytes = blocks_to_bytes(sample.app_blocks, opt.block_size);
  sample.exec_time_s = period_s;
  sample.app_bytes = app_bytes;
  sample.iops = period_s > 0
                    ? static_cast<double>(sample.access_count) / period_s
                    : 0.0;
  sample.bandwidth_bps =
      period_s > 0 ? static_cast<double>(app_bytes) / period_s : 0.0;

  if (opt.csv) {
    TextTable table({"files", "records", "processes", "span_s", "B", "T_s",
                     "bps", "iops", "bw_Bps", "arpt_s", "peak"});
    table.add_row({std::to_string(paths->size()),
                   std::to_string(sample.access_count),
                   std::to_string(observed.process_count()),
                   fmt_double(span_s, 6), std::to_string(sample.app_blocks),
                   fmt_double(sample.io_time_s, 6), fmt_double(sample.bps, 3),
                   fmt_double(sample.iops, 3),
                   fmt_double(sample.bandwidth_bps, 3),
                   fmt_double(sample.arpt_s, 9),
                   fmt_double(sample.peak_concurrency, 0)});
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    std::printf("bpsio_report: %zu trace file(s), %llu records, %zu process(es)\n",
                paths->size(),
                static_cast<unsigned long long>(sample.access_count),
                observed.process_count());
    std::printf("  span   %s s%s\n", fmt_double(span_s, 6).c_str(),
                opt.exec_time_s ? "  (period overridden by --exec-time)" : "");
    std::printf("  B      %llu blocks (%s @ %llu B/block)\n",
                static_cast<unsigned long long>(sample.app_blocks),
                human_bytes(app_bytes).c_str(),
                static_cast<unsigned long long>(opt.block_size));
    std::printf("  T      %s s\n", fmt_double(sample.io_time_s, 6).c_str());
    std::printf("  BPS    %s blocks/s\n", fmt_double(sample.bps, 3).c_str());
    std::printf("  IOPS   %s /s\n", fmt_double(sample.iops, 3).c_str());
    std::printf("  BW     %s (application bytes / period)\n",
                human_rate(sample.bandwidth_bps).c_str());
    std::printf("  ARPT   %s s\n", fmt_double(sample.arpt_s, 9).c_str());
    std::printf("  peak   %s concurrent\n",
                fmt_double(sample.peak_concurrency, 0).c_str());
  }

  if (opt.per_pid) {
    TextTable table({"pid", "records", "blocks", "T_s", "bps", "arpt_s"});
    for (auto& [pid, stats] : observed.pids()) {
      const double t_s = static_cast<double>(stats.busy_ns) / 1e9;
      table.add_row(
          {std::to_string(pid), std::to_string(stats.records),
           std::to_string(stats.blocks), fmt_double(t_s, 6),
           fmt_double(t_s > 0 ? static_cast<double>(stats.blocks) / t_s : 0.0,
                      3),
           fmt_double(stats.records > 0
                          ? static_cast<double>(stats.response_ns) / 1e9 /
                                static_cast<double>(stats.records)
                          : 0.0,
                      9)});
    }
    std::printf("%s%s", opt.csv ? "" : "\n",
                opt.csv ? table.to_csv().c_str() : table.to_string().c_str());
  }

  if (timeline) {
    metrics::Timeline built = timeline->take();
    std::printf("%s%s", opt.csv ? "" : "\n", built.to_string().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bpsio

int main(int argc, char** argv) {
  bpsio::Options opt;
  bpsio::cli::ArgParser parser = bpsio::make_parser(opt);
  switch (parser.parse(argc, argv, opt.inputs)) {
    case bpsio::cli::ArgParser::Outcome::ok:
      break;
    case bpsio::cli::ArgParser::Outcome::help:
      return 0;
    case bpsio::cli::ArgParser::Outcome::error:
      return 2;
  }
  if (opt.inputs.empty()) {
    std::fputs(parser.usage().c_str(), stderr);
    return 2;
  }
  return bpsio::run_report(opt);
}
