#include "workload/access_pattern.hpp"

#include <algorithm>

namespace bpsio::workload {

std::vector<AppOp> sequential_ops(AppOp::Kind kind, Bytes file_size,
                                  Bytes record) {
  std::vector<AppOp> ops;
  if (record == 0 || file_size == 0) return ops;
  ops.reserve(static_cast<std::size_t>((file_size + record - 1) / record));
  for (Bytes off = 0; off < file_size; off += record) {
    AppOp op;
    op.kind = kind;
    op.offset = off;
    op.size = std::min(record, file_size - off);
    ops.push_back(std::move(op));
  }
  return ops;
}

std::vector<AppOp> random_ops(AppOp::Kind kind, Bytes file_size, Bytes record,
                              std::uint64_t count, Rng& rng) {
  std::vector<AppOp> ops;
  if (record == 0 || file_size < record) return ops;
  const std::uint64_t slots = file_size / record;
  ops.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    AppOp op;
    op.kind = kind;
    op.offset = rng.uniform_u64(slots) * record;
    op.size = record;
    ops.push_back(std::move(op));
  }
  return ops;
}

std::vector<AppOp> strided_ops(AppOp::Kind kind, Bytes start, Bytes stride,
                               Bytes record, std::uint64_t count) {
  std::vector<AppOp> ops;
  ops.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    AppOp op;
    op.kind = kind;
    op.offset = start + i * stride;
    op.size = record;
    ops.push_back(std::move(op));
  }
  return ops;
}

std::vector<AppOp> hpio_ops(AppOp::Kind kind, std::uint32_t rank,
                            std::uint32_t nprocs, std::uint64_t region_count,
                            Bytes region_size, Bytes region_spacing,
                            std::uint64_t regions_per_call, bool interleaved) {
  std::vector<AppOp> ops;
  if (region_count == 0 || nprocs == 0) return ops;
  const Bytes pitch = region_size + region_spacing;
  std::vector<mio::Region> mine;
  if (interleaved) {
    for (std::uint64_t j = rank; j < region_count; j += nprocs) {
      mine.push_back(mio::Region{j * pitch, region_size});
    }
  } else {
    const std::uint64_t per = region_count / nprocs;
    const std::uint64_t first = rank * per;
    const std::uint64_t last =
        rank + 1 == nprocs ? region_count : first + per;
    for (std::uint64_t j = first; j < last; ++j) {
      mine.push_back(mio::Region{j * pitch, region_size});
    }
  }
  if (regions_per_call == 0) regions_per_call = mine.size();
  for (std::size_t base = 0; base < mine.size(); base += regions_per_call) {
    AppOp op;
    op.kind = kind;
    const std::size_t n = std::min<std::size_t>(regions_per_call,
                                                mine.size() - base);
    op.regions.assign(mine.begin() + static_cast<std::ptrdiff_t>(base),
                      mine.begin() + static_cast<std::ptrdiff_t>(base + n));
    ops.push_back(std::move(op));
  }
  return ops;
}

Bytes ops_bytes(const std::vector<AppOp>& ops) {
  Bytes total = 0;
  for (const auto& op : ops) {
    total += op.size;
    total += mio::regions_bytes(op.regions);
  }
  return total;
}

}  // namespace bpsio::workload
