#include "metrics/online.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/check.hpp"
#include "common/log.hpp"

namespace bpsio::metrics {

void OnlineBpsCounter::access_started(SimTime t) {
  if (active_ == 0) open_since_ = t;
  ++active_;
  ++started_;
}

void OnlineBpsCounter::access_finished(SimTime t, std::uint64_t blocks) {
  if (active_ == 0) {
    // Feeder contract violation (previously a bare assert that was a no-op
    // in Release, letting active_ wrap to ~4 billion): drop the event and
    // record the violation instead of corrupting B and T.
    ++unmatched_finishes_;
    BPSIO_WARN("online counter: finish at t=%lldns (%llu blocks) without a "
               "matching start; dropped",
               static_cast<long long>(t.ns()),
               static_cast<unsigned long long>(blocks));
    return;
  }
  blocks_ += blocks;
  ++finished_;
  --active_;
  if (active_ == 0) busy_ns_ += (t - open_since_).ns();
}

SimDuration OnlineBpsCounter::busy_time(SimTime now) const {
  std::int64_t total = busy_ns_;
  if (active_ > 0) total += (now - open_since_).ns();
  return SimDuration(total);
}

double OnlineBpsCounter::bps(SimTime now) const {
  const auto t = busy_time(now);
  if (t.ns() <= 0) return 0.0;
  return static_cast<double>(blocks_) / t.seconds();
}

void OnlineBpsCounter::reset() { *this = OnlineBpsCounter{}; }

SlidingWindowMetrics::SlidingWindowMetrics(SimDuration window)
    : window_(window) {
  BPSIO_CHECK(window.ns() > 0, "sliding window length must be positive");
}

std::int64_t SlidingWindowMetrics::window_start_ns() const {
  // Saturating: with now near the epoch (captured traces start at boot
  // monotonic 0 or huge monotonic values; synthetic tests at small ints),
  // now - W must not wrap below INT64_MIN.
  const std::int64_t now_ns = now_.ns();
  const std::int64_t min_ns = std::numeric_limits<std::int64_t>::min();
  if (now_ns < min_ns + window_.ns()) return min_ns;
  return now_ns - window_.ns();
}

void SlidingWindowMetrics::add(const trace::IoRecord& record) {
  if (!record.valid()) return;  // end < start: never corrupt the union
  if (!any_ || record.end_ns > now_.ns()) now_ = SimTime(record.end_ns);
  any_ = true;
  const std::int64_t ws = window_start_ns();
  if (record.end_ns <= ws) {
    evict();  // a late record older than the window changes nothing
    return;
  }
  live_.push(Live{record.end_ns, record.blocks,
                  record.end_ns - record.start_ns});
  ++count_;
  blocks_ += record.blocks;
  response_sum_ns_ += record.end_ns - record.start_ns;
  const std::int64_t clipped_start = std::max(record.start_ns, ws);
  if (record.end_ns > clipped_start) {
    insert_interval(clipped_start, record.end_ns);
  }
  evict();
}

void SlidingWindowMetrics::add(std::span<const trace::IoRecord> records) {
  // The window state is a function of the record multiset (the shuffled
  // differential tests prove order-independence), so a batch may advance
  // `now` once, accumulate, union once, and evict once — equivalent to the
  // per-record loop, minus all the intermediate searches.
  std::int64_t max_end = std::numeric_limits<std::int64_t>::min();
  for (const trace::IoRecord& r : records) {
    if (r.valid() && r.end_ns > max_end) max_end = r.end_ns;
  }
  if (max_end == std::numeric_limits<std::int64_t>::min()) return;
  if (!any_ || max_end > now_.ns()) now_ = SimTime(max_end);
  any_ = true;
  const std::int64_t ws = window_start_ns();

  batch_.clear();
  bool sorted = true;
  std::int64_t prev_start = std::numeric_limits<std::int64_t>::min();
  for (const trace::IoRecord& r : records) {
    if (!r.valid() || r.end_ns <= ws) continue;
    live_.push(Live{r.end_ns, r.blocks, r.end_ns - r.start_ns});
    ++count_;
    blocks_ += r.blocks;
    response_sum_ns_ += r.end_ns - r.start_ns;
    const std::int64_t clipped_start = std::max(r.start_ns, ws);
    if (r.end_ns > clipped_start) {
      if (clipped_start < prev_start) sorted = false;
      prev_start = clipped_start;
      batch_.push_back(BusyInterval{clipped_start, r.end_ns});
    }
  }
  if (!batch_.empty()) {
    if (!sorted) {
      std::sort(batch_.begin(), batch_.end(),
                [](const BusyInterval& a, const BusyInterval& b) {
                  return a.start_ns < b.start_ns;
                });
    }
    // Coalesce overlapping/touching neighbours in place: a start-ordered
    // frame collapses to a handful of disjoint runs.
    std::size_t w = 0;
    for (std::size_t i = 1; i < batch_.size(); ++i) {
      if (batch_[i].start_ns <= batch_[w].end_ns) {
        batch_[w].end_ns = std::max(batch_[w].end_ns, batch_[i].end_ns);
      } else {
        batch_[++w] = batch_[i];
      }
    }
    batch_.resize(w + 1);
    insert_runs();
  }
  evict();
}

void SlidingWindowMetrics::advance(SimTime now) {
  if (!any_ || now.ns() <= now_.ns()) return;
  now_ = now;
  evict();
}

void SlidingWindowMetrics::insert_interval(std::int64_t start_ns,
                                           std::int64_t end_ns) {
  // Merge [start, end) into the disjoint set; absorb every interval it
  // overlaps or touches, keeping busy_ns_ the exact total measure.
  auto it = std::lower_bound(merged_.begin(), merged_.end(), start_ns,
                             [](const BusyInterval& iv, std::int64_t v) {
                               return iv.end_ns < v;
                             });
  auto last = it;
  while (last != merged_.end() && last->start_ns <= end_ns) {
    start_ns = std::min(start_ns, last->start_ns);
    end_ns = std::max(end_ns, last->end_ns);
    busy_ns_ -= last->end_ns - last->start_ns;
    ++last;
  }
  if (it == last) {
    merged_.insert(it, BusyInterval{start_ns, end_ns});
  } else {
    it->start_ns = start_ns;
    it->end_ns = end_ns;
    merged_.erase(it + 1, last);
  }
  busy_ns_ += end_ns - start_ns;
}

void SlidingWindowMetrics::insert_runs() {
  // Hinted batched union: binary-search the slice of merged_ that the batch
  // can touch, two-pointer union both sorted lists into a scratch, splice
  // the result back. Everything before/after the slice is untouched.
  const auto lo = std::lower_bound(merged_.begin(), merged_.end(),
                                   batch_.front().start_ns,
                                   [](const BusyInterval& iv, std::int64_t v) {
                                     return iv.end_ns < v;
                                   });
  const auto hi = std::upper_bound(lo, merged_.end(), batch_.back().end_ns,
                                   [](std::int64_t v, const BusyInterval& iv) {
                                     return v < iv.start_ns;
                                   });
  std::int64_t removed = 0;
  for (auto it = lo; it != hi; ++it) removed += it->end_ns - it->start_ns;

  union_out_.clear();
  const auto push = [this](const BusyInterval& iv) {
    if (!union_out_.empty() && iv.start_ns <= union_out_.back().end_ns) {
      union_out_.back().end_ns =
          std::max(union_out_.back().end_ns, iv.end_ns);
    } else {
      union_out_.push_back(iv);
    }
  };
  auto a = lo;
  std::size_t b = 0;
  while (a != hi || b < batch_.size()) {
    if (b >= batch_.size() ||
        (a != hi && a->start_ns <= batch_[b].start_ns)) {
      push(*a++);
    } else {
      push(batch_[b++]);
    }
  }
  std::int64_t added = 0;
  for (const BusyInterval& iv : union_out_) added += iv.end_ns - iv.start_ns;
  busy_ns_ += added - removed;

  const auto lo_idx = static_cast<std::size_t>(lo - merged_.begin());
  const auto hi_idx = static_cast<std::size_t>(hi - merged_.begin());
  if (union_out_.size() == hi_idx - lo_idx) {
    std::copy(union_out_.begin(), union_out_.end(),
              merged_.begin() + static_cast<std::ptrdiff_t>(lo_idx));
  } else {
    merged_.erase(lo, hi);
    merged_.insert(merged_.begin() + static_cast<std::ptrdiff_t>(lo_idx),
                   union_out_.begin(), union_out_.end());
  }
}

void SlidingWindowMetrics::evict() {
  const std::int64_t ws = window_start_ns();
  while (!live_.empty() && live_.top().end_ns <= ws) {
    const Live& gone = live_.top();
    --count_;
    blocks_ -= gone.record_blocks;
    response_sum_ns_ -= gone.response_ns;
    live_.pop();
  }
  // Clip the merged union at the window's left edge: drop fully-expired
  // intervals in one erase, clamp the straddler in place.
  std::size_t drop = 0;
  while (drop < merged_.size() && merged_[drop].end_ns <= ws) {
    busy_ns_ -= merged_[drop].end_ns - merged_[drop].start_ns;
    ++drop;
  }
  if (drop > 0) {
    merged_.erase(merged_.begin(),
                  merged_.begin() + static_cast<std::ptrdiff_t>(drop));
  }
  if (!merged_.empty() && merged_.front().start_ns < ws) {
    busy_ns_ -= ws - merged_.front().start_ns;
    merged_.front().start_ns = ws;
  }
}

double SlidingWindowMetrics::bps() const {
  if (busy_ns_ <= 0) return 0.0;
  return static_cast<double>(blocks_) / SimDuration(busy_ns_).seconds();
}

double SlidingWindowMetrics::iops() const {
  return static_cast<double>(count_) / window_.seconds();
}

double SlidingWindowMetrics::arpt_s() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(response_sum_ns_) / 1e9 /
         static_cast<double>(count_);
}

double SlidingWindowMetrics::bandwidth_bps(Bytes block_size) const {
  return static_cast<double>(blocks_to_bytes(blocks_, block_size)) /
         window_.seconds();
}

void SlidingWindowMetrics::reset() { *this = SlidingWindowMetrics(window_); }

std::string OnlineBpsCounter::to_string(SimTime now) const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "online BPS=%.6g (B=%llu, T=%.6gs, in-flight=%u)", bps(now),
                static_cast<unsigned long long>(blocks_),
                busy_time(now).seconds(), active_);
  return buf;
}

}  // namespace bpsio::metrics
