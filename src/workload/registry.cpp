#include "workload/registry.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

#include "trace/serialize.hpp"
#include "workload/zoo/darshan_import.hpp"

namespace bpsio::workload {

namespace {

/// Reject parameter keys the workload does not understand — a typo'd
/// `--set recordsize=64K` must fail, not silently run with the default.
Status check_keys(const Params& params, const std::vector<std::string>& keys) {
  for (const auto& [key, value] : params.entries()) {
    (void)value;
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      std::string allowed;
      for (const std::string& k : keys) {
        if (!allowed.empty()) allowed += ", ";
        allowed += k;
      }
      return Error{Errc::invalid_argument,
                   "unknown parameter '" + key + "' (allowed: " + allowed +
                       ")"};
    }
  }
  return {};
}

Result<IozoneConfig::Mode> parse_iozone_mode(const std::string& name) {
  using Mode = IozoneConfig::Mode;
  if (name == "read") return Mode::read;
  if (name == "write") return Mode::write;
  if (name == "reread") return Mode::reread;
  if (name == "rewrite") return Mode::rewrite;
  if (name == "random_read") return Mode::random_read;
  if (name == "random_write") return Mode::random_write;
  if (name == "backward_read") return Mode::backward_read;
  if (name == "stride_read") return Mode::stride_read;
  if (name == "mixed") return Mode::mixed;
  return Error{Errc::invalid_argument, "unknown iozone mode: " + name};
}

Result<WorkloadPtr> make_iozone(const Params& p) {
  IozoneConfig cfg;
  Result<IozoneConfig::Mode> mode =
      parse_iozone_mode(p.get_string("mode", "read"));
  if (!mode) return mode.error();
  cfg.mode = *mode;
  cfg.file_size = p.get_bytes("file_size", cfg.file_size);
  cfg.record_size = p.get_bytes("record_size", cfg.record_size);
  cfg.processes =
      static_cast<std::uint32_t>(p.get_int("processes", cfg.processes));
  cfg.size_is_total = p.get_bool("size_is_total", cfg.size_is_total);
  cfg.separate_files = p.get_bool("separate_files", cfg.separate_files);
  cfg.random_count = static_cast<std::uint64_t>(
      p.get_int("random_count", static_cast<std::int64_t>(cfg.random_count)));
  cfg.stride = p.get_bytes("stride", cfg.stride);
  cfg.think = SimDuration::from_us(p.get_double("think_us", 0.0));
  cfg.seed = static_cast<std::uint64_t>(
      p.get_int("seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.path_prefix = p.get_string("path", cfg.path_prefix);
  cfg.access_fraction = p.get_double("access_fraction", cfg.access_fraction);
  return make_workload(std::move(cfg));
}

Result<WorkloadPtr> make_ior(const Params& p) {
  IorConfig cfg;
  cfg.file_size = p.get_bytes("file_size", cfg.file_size);
  cfg.transfer_size = p.get_bytes("transfer_size", cfg.transfer_size);
  cfg.processes =
      static_cast<std::uint32_t>(p.get_int("processes", cfg.processes));
  cfg.write = p.get_bool("write", cfg.write);
  cfg.collective = p.get_bool("collective", cfg.collective);
  cfg.aggregators =
      static_cast<std::uint32_t>(p.get_int("aggregators", cfg.aggregators));
  cfg.think = SimDuration::from_us(p.get_double("think_us", 0.0));
  cfg.path = p.get_string("path", cfg.path);
  return make_workload(std::move(cfg));
}

Result<WorkloadPtr> make_hpio(const Params& p) {
  HpioConfig cfg;
  cfg.region_count = static_cast<std::uint64_t>(
      p.get_int("region_count", static_cast<std::int64_t>(cfg.region_count)));
  cfg.region_size = p.get_bytes("region_size", cfg.region_size);
  cfg.region_spacing = p.get_bytes("region_spacing", cfg.region_spacing);
  cfg.processes =
      static_cast<std::uint32_t>(p.get_int("processes", cfg.processes));
  cfg.write = p.get_bool("write", cfg.write);
  cfg.sieving.enabled = p.get_bool("sieving", cfg.sieving.enabled);
  cfg.sieving.buffer_size =
      p.get_bytes("sieve_buffer", cfg.sieving.buffer_size);
  cfg.regions_per_call = static_cast<std::uint64_t>(p.get_int(
      "regions_per_call", static_cast<std::int64_t>(cfg.regions_per_call)));
  cfg.interleaved = p.get_bool("interleaved", cfg.interleaved);
  cfg.path = p.get_string("path", cfg.path);
  return make_workload(std::move(cfg));
}

Result<WorkloadPtr> make_openloop(const Params& p) {
  OpenLoopConfig cfg;
  cfg.arrival_rate_hz = p.get_double("rate_hz", cfg.arrival_rate_hz);
  cfg.request_size = p.get_bytes("request_size", cfg.request_size);
  cfg.request_count = static_cast<std::uint64_t>(p.get_int(
      "request_count", static_cast<std::int64_t>(cfg.request_count)));
  const std::string pattern = p.get_string("pattern", "sequential");
  if (pattern == "sequential") {
    cfg.pattern = OpenLoopConfig::Pattern::sequential;
  } else if (pattern == "random") {
    cfg.pattern = OpenLoopConfig::Pattern::random;
  } else {
    return Error{Errc::invalid_argument,
                 "unknown openloop pattern: " + pattern};
  }
  cfg.file_size = p.get_bytes("file_size", cfg.file_size);
  cfg.write = p.get_bool("write", cfg.write);
  cfg.streams = static_cast<std::uint32_t>(p.get_int("streams", cfg.streams));
  cfg.seed = static_cast<std::uint64_t>(
      p.get_int("seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.path_prefix = p.get_string("path", cfg.path_prefix);
  return make_workload(std::move(cfg));
}

/// Load a trace for replay: v2 binary (sniffed by magic) or the darshan
/// text form — so `--set trace=app.bpstrace` and `--set trace=app.log`
/// both just work.
Result<std::vector<trace::IoRecord>> load_trace_any(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) {
    return Error{Errc::not_found, "cannot open trace: " + path};
  }
  std::uint32_t magic = 0;
  probe.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  probe.close();
  if (magic == trace::kTraceMagic) return trace::load_binary(path);
  return zoo::load_darshan(path);
}

Result<WorkloadPtr> make_replay(const Params& p) {
  ReplayConfig cfg;
  const std::string trace_path = p.get_string("trace", "");
  if (trace_path.empty()) {
    return Error{Errc::invalid_argument,
                 "replay needs a trace parameter (binary or darshan log)"};
  }
  Result<std::vector<trace::IoRecord>> records = load_trace_any(trace_path);
  if (!records) return records.error();
  cfg.records = std::move(*records);
  const std::string mode = p.get_string("mode", "closed_loop");
  if (mode == "closed_loop") {
    cfg.mode = ReplayConfig::Mode::closed_loop;
  } else if (mode == "open_loop") {
    cfg.mode = ReplayConfig::Mode::open_loop;
  } else {
    return Error{Errc::invalid_argument, "unknown replay mode: " + mode};
  }
  cfg.file_size = p.get_bytes("file_size", cfg.file_size);
  cfg.path_prefix = p.get_string("path", cfg.path_prefix);
  return make_workload(std::move(cfg));
}

Result<WorkloadPtr> make_zoo(const std::string& scenario, const Params& p) {
  zoo::ZooParams zp;
  zp.scale = p.get_double("scale", zp.scale);
  zp.processes =
      static_cast<std::uint32_t>(p.get_int("processes", zp.processes));
  zp.seed = static_cast<std::uint64_t>(
      p.get_int("seed", static_cast<std::int64_t>(zp.seed)));
  zp.think_scale = p.get_double("think_scale", zp.think_scale);
  Result<zoo::ZooPlan> plan = zoo::build_plan(scenario, zp);
  if (!plan) return plan.error();
  return make_workload(std::move(*plan));
}

}  // namespace

Registry::Registry() {
  entries_.push_back(
      {"iozone", "IOzone-like sequential/random/strided benchmark",
       {"mode", "file_size", "record_size", "processes", "size_is_total",
        "separate_files", "random_count", "stride", "think_us", "seed",
        "path", "access_fraction"},
       make_iozone});
  entries_.push_back(
      {"ior", "IOR-like shared-file MPI benchmark",
       {"file_size", "transfer_size", "processes", "write", "collective",
        "aggregators", "think_us", "path"},
       make_ior});
  entries_.push_back(
      {"hpio", "Hpio-like noncontiguous regions benchmark",
       {"region_count", "region_size", "region_spacing", "processes", "write",
        "sieving", "sieve_buffer", "regions_per_call", "interleaved", "path"},
       make_hpio});
  entries_.push_back(
      {"openloop", "Poisson open-loop load generator",
       {"rate_hz", "request_size", "request_count", "pattern", "file_size",
        "write", "streams", "seed", "path"},
       make_openloop});
  entries_.push_back(
      {"replay", "trace replay (v2 binary or darshan-style log)",
       {"trace", "mode", "file_size", "path"},
       make_replay});
  for (const zoo::ScenarioInfo& info : zoo::scenarios()) {
    const std::string scenario = info.name;
    entries_.push_back(
        {"zoo." + scenario,
         std::string(zoo::scenario_class_name(info.cls)) + ": " + info.summary,
         {"scale", "processes", "seed", "think_scale"},
         [scenario](const Params& p) { return make_zoo(scenario, p); }});
  }
  names_.reserve(entries_.size());
  for (const Entry& e : entries_) names_.push_back(e.name);
}

bool Registry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

const Registry::Entry* Registry::find(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Result<WorkloadPtr> Registry::make(const std::string& name,
                                   const Params& params) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    std::string known;
    for (const std::string& n : names_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Error{Errc::not_found,
                 "unknown workload '" + name + "' (known: " + known + ")"};
  }
  if (Status s = check_keys(params, entry->keys); !s) {
    return Error{s.error().code, name + ": " + s.error().message};
  }
  return entry->factory(params);
}

const Registry& registry() {
  static const Registry instance;
  return instance;
}

Result<WorkloadPtr> make_workload(const std::string& name,
                                  const Params& params) {
  return registry().make(name, params);
}

WorkloadPtr make_workload(IozoneConfig config) {
  return std::make_unique<IozoneWorkload>(std::move(config));
}
WorkloadPtr make_workload(IorConfig config) {
  return std::make_unique<IorWorkload>(std::move(config));
}
WorkloadPtr make_workload(HpioConfig config) {
  return std::make_unique<HpioWorkload>(std::move(config));
}
WorkloadPtr make_workload(OpenLoopConfig config) {
  return std::make_unique<OpenLoopWorkload>(std::move(config));
}
WorkloadPtr make_workload(ReplayConfig config) {
  return std::make_unique<TraceReplayWorkload>(std::move(config));
}
WorkloadPtr make_workload(zoo::ZooPlan plan) {
  return std::make_unique<zoo::ZooWorkload>(std::move(plan));
}

}  // namespace bpsio::workload
