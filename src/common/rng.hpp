// Deterministic random number generation.
//
// Every stochastic element of a simulation run (device latency jitter,
// random access patterns, arrival perturbation) draws from an Rng owned by
// that run, seeded explicitly. Re-running with the same seed is bit-identical,
// which turns the paper's "average of 5 runs" into 5 seeds averaged.
#pragma once

#include <array>
#include <cstdint>

namespace bpsio {

/// SplitMix64 — used to expand a user seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, tiny state; the workhorse PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x42ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n == 0 returns 0.
  std::uint64_t uniform_u64(std::uint64_t n) {
    if (n == 0) return 0;
    // Lemire's nearly-divisionless method, rejection-free for our purposes.
    const std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Exponential with the given mean (rate = 1/mean).
  double exponential(double mean);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Derive an independent child stream (for per-process RNGs).
  Rng fork() { return Rng(next() ^ 0x5bf03635aca8c2f3ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace bpsio
