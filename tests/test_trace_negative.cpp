// Negative-path coverage for trace persistence and validation: corrupt or
// foreign inputs must be rejected with a descriptive error, never silently
// reinterpreted. B and T are only trustworthy if malformed traces cannot
// reach the metric pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/pipeline.hpp"
#include "trace/io_record.hpp"
#include "trace/record_source.hpp"
#include "trace/serialize.hpp"
#include "trace/spill_writer.hpp"
#include "trace/validate.hpp"

namespace bpsio::trace {
namespace {

std::vector<IoRecord> sample_records(std::size_t n) {
  std::vector<IoRecord> records;
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(make_record(static_cast<std::uint32_t>(1 + i % 3), 8 + i,
                                  SimTime(static_cast<std::int64_t>(i) * 100),
                                  SimTime(static_cast<std::int64_t>(i) * 100 +
                                          50),
                                  IoOpKind::read, kIoOk));
  }
  return records;
}

std::string serialized(const std::vector<IoRecord>& records) {
  std::ostringstream out(std::ios::binary);
  const auto written = write_binary(out, records);
  EXPECT_TRUE(written.ok());
  return out.str();
}

Result<std::vector<IoRecord>> read_bytes(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return read_binary(in);
}

TEST(TraceNegative, RoundTripStillWorks) {
  const auto records = sample_records(5);
  const auto loaded = read_bytes(serialized(records));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), records.size());
  EXPECT_EQ(std::memcmp(loaded->data(), records.data(),
                        records.size() * sizeof(IoRecord)),
            0);
}

TEST(TraceNegative, TruncatedHeaderIsRejected) {
  const std::string bytes = serialized(sample_records(2));
  for (std::size_t keep : {std::size_t{0}, std::size_t{4},
                           sizeof(TraceHeader) - 1}) {
    const auto result = read_bytes(bytes.substr(0, keep));
    ASSERT_FALSE(result.ok()) << "kept " << keep << " bytes";
    EXPECT_NE(result.error().message.find("truncated trace header"),
              std::string::npos)
        << result.error().message;
  }
}

TEST(TraceNegative, BadMagicIsRejected) {
  std::string bytes = serialized(sample_records(1));
  bytes[0] ^= 0xff;
  const auto result = read_bytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("bad trace magic"), std::string::npos);
}

TEST(TraceNegative, UnsupportedVersionIsRejectedByNumber) {
  std::string bytes = serialized(sample_records(1));
  TraceHeader header;
  std::memcpy(&header, bytes.data(), sizeof header);
  header.version = 77;
  std::memcpy(bytes.data(), &header, sizeof header);
  const auto result = read_bytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("unsupported trace version 77"),
            std::string::npos)
      << result.error().message;
}

TEST(TraceNegative, NonPaperRecordSizeIsRejected) {
  std::string bytes = serialized(sample_records(1));
  TraceHeader header;
  std::memcpy(&header, bytes.data(), sizeof header);
  header.record_size = 48;
  std::memcpy(bytes.data(), &header, sizeof header);
  const auto result = read_bytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("non-32-byte record size 48"),
            std::string::npos)
      << result.error().message;
}

TEST(TraceNegative, RecordCountMismatchReportsClaimedAndFound) {
  const auto records = sample_records(4);
  std::string bytes = serialized(records);
  // Drop the last record's bytes: the header still claims 4.
  bytes.resize(bytes.size() - sizeof(IoRecord));
  const auto result = read_bytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("header claims 4 records, found 3"),
            std::string::npos)
      << result.error().message;
}

TEST(TraceNegative, AbsurdRecordCountFailsCleanlyWithoutHugeAllocation) {
  // A corrupt header claiming ~500 billion records must produce a clean
  // truncation error, not a ~16 TiB vector allocation.
  std::string bytes = serialized(sample_records(2));
  TraceHeader header;
  std::memcpy(&header, bytes.data(), sizeof header);
  header.record_count = 1ULL << 39;
  std::memcpy(bytes.data(), &header, sizeof header);
  const auto result = read_bytes(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("trace truncated"), std::string::npos);
  EXPECT_NE(result.error().message.find("found 2"), std::string::npos)
      << result.error().message;
}

TEST(TraceNegative, SpillWriterEmitsTheSharedHeaderFormat) {
  const std::string path = ::testing::TempDir() + "/spill_negative.bpstrace";
  const auto records = sample_records(3);
  {
    SpillWriter writer(path, /*batch_records=*/2);
    for (const auto& r : records) writer.append(r);
    ASSERT_TRUE(writer.close().ok());
  }
  const auto loaded = load_binary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  ASSERT_EQ(loaded->size(), records.size());
  EXPECT_EQ(std::memcmp(loaded->data(), records.data(),
                        records.size() * sizeof(IoRecord)),
            0);
}

TEST(TraceNegative, ValidateFlagsEndBeforeStart) {
  auto records = sample_records(3);
  records[1].end_ns = records[1].start_ns - 10;
  const auto report = validate(records);
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].index, 1u);
  EXPECT_EQ(report.issues[0].what, "end before start");
  EXPECT_NE(report.to_string().find("end before start"), std::string::npos);
}

TEST(TraceNegative, ValidateFlagsNegativeStartAndZeroBlocks) {
  auto records = sample_records(2);
  records[0].start_ns = -5;
  records[1].blocks = 0;  // successful access claiming no data moved
  const auto report = validate(records);
  EXPECT_EQ(report.issues.size(), 2u);
  EXPECT_EQ(report.issues[0].what, "negative start time");
  EXPECT_EQ(report.issues[1].what, "successful access with zero blocks");
}

TEST(TraceNegative, HeaderOnlyTraceReadsAsEmpty) {
  // A traced process that performed no captured I/O (or was filtered down
  // to nothing) leaves a header-only .bpstrace — a valid, empty trace, not
  // a corruption. bpsio_report on such a capture must report B=0, T=0.
  const std::string path = "/tmp/bpsio_neg_empty.bpstrace";
  {
    SpillWriter writer(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.close().ok());
    EXPECT_EQ(writer.records_written(), 0u);
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  const auto header = read_trace_header(in);
  ASSERT_TRUE(header.ok()) << header.error().to_string();
  EXPECT_EQ(header->record_count, 0u);
  EXPECT_EQ(header->record_size, sizeof(IoRecord));
  in.close();

  SpilledTraceSource source(path);
  EXPECT_TRUE(source.status().ok());
  EXPECT_EQ(source.record_count(), 0u);
  EXPECT_TRUE(source.next_chunk().empty());
  EXPECT_TRUE(source.status().ok());  // exhausted, not failed
  std::remove(path.c_str());
}

TEST(TraceNegative, EmptyTraceMeasuresZeroBlocksZeroTime) {
  const std::string path = "/tmp/bpsio_neg_empty_measure.bpstrace";
  {
    SpillWriter writer(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.close().ok());
  }
  SpilledTraceSource source(path);
  const auto sample =
      metrics::measure_stream(source, /*moved_bytes=*/0, SimDuration(0));
  ASSERT_TRUE(sample.ok()) << sample.error().to_string();
  EXPECT_EQ(sample->app_blocks, 0u);   // B = 0
  EXPECT_EQ(sample->access_count, 0u);
  EXPECT_EQ(sample->io_time_s, 0.0);   // T = 0
  EXPECT_EQ(sample->bps, 0.0);
  std::remove(path.c_str());
}

TEST(TraceNegative, CheckpointedTraceIsReadableWithoutClose) {
  // The capture library checkpoints after every spill precisely so a
  // process that dies without running atexit still leaves a usable trace.
  const std::string path = "/tmp/bpsio_neg_checkpoint.bpstrace";
  auto records = sample_records(5);
  {
    SpillWriter writer(path, /*batch_records=*/8);
    for (const IoRecord& r : records) writer.append(r);
    ASSERT_TRUE(writer.checkpoint().ok());
    // No close(): simulate a hard exit. The destructor's close() is what a
    // clean exit would do, so read the file back *before* destroying...
    std::ifstream in(path, std::ios::binary);
    const auto loaded = read_binary(in);
    ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
    EXPECT_EQ(*loaded, records);
    // ...and checkpoint() must leave the writer appendable.
    writer.append(records[0]);
    ASSERT_TRUE(writer.close().ok());
    EXPECT_EQ(writer.records_written(), 6u);
  }
  const auto final_load = load_binary(path);
  ASSERT_TRUE(final_load.ok());
  EXPECT_EQ(final_load->size(), 6u);
  std::remove(path.c_str());
}

TEST(TraceNegative, ValidatePerPidMonotoneOrder) {
  std::vector<IoRecord> records;
  records.push_back(make_record(1, 4, SimTime(100), SimTime(150),
                                IoOpKind::read, kIoOk));
  records.push_back(make_record(1, 4, SimTime(50), SimTime(90),
                                IoOpKind::read, kIoOk));
  EXPECT_TRUE(validate(records, /*expect_per_pid_monotone=*/false).ok());
  const auto report = validate(records, /*expect_per_pid_monotone=*/true);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].what, "per-pid start order violated");
}

}  // namespace
}  // namespace bpsio::trace
