// Peak-RSS: streaming vs materialized metric computation over a spilled
// trace.
//
// The claim under test is the streaming pipeline's reason to exist: a
// MetricSample over an N-record trace file costs O(chunk) resident memory
// through SpilledTraceSource + measure_stream, while the materialized path
// (load_binary -> TraceCollector -> measure_run) costs O(N). Both must
// produce bit-identical samples — this harness checks equality AND that the
// streaming pass's RSS growth stays flat while the trace is >= 100x the
// SpillWriter's in-memory batch default (4096 records).
//
//   bench_trace_stream [--records=4096000] [--chunk=16384]
//
// The smoke ctest runs --records=409600 (100x the in-memory default,
// ~12.5 MiB on disk). Exit status is nonzero on any mismatch or an RSS
// blowup, so CI catches a regression that quietly re-materializes the trace.
#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "metrics/calculators.hpp"
#include "metrics/pipeline.hpp"
#include "trace/record_source.hpp"
#include "trace/serialize.hpp"
#include "trace/spill_writer.hpp"
#include "trace/trace_collector.hpp"
#include "tools/cli.hpp"

using namespace bpsio;

namespace {

// Peak resident set size in KiB (Linux ru_maxrss unit). Monotone per
// process, which is why the streaming pass must run first.
long peak_rss_kib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

// Overlapping bursty workload in canonical (start, end) order: strictly
// increasing starts, each access overlapping the next few.
trace::IoRecord synthetic_record(std::uint64_t i) {
  const auto start = static_cast<std::int64_t>(i) * 50;
  const auto len = 120 + static_cast<std::int64_t>(i % 7) * 40;
  return trace::make_record(static_cast<std::uint32_t>(i % 8 + 1), i % 9 + 1,
                            SimTime(start), SimTime(start + len));
}

bool identical(const metrics::MetricSample& a, const metrics::MetricSample& b,
               const char* what) {
  const bool same =
      a.access_count == b.access_count && a.app_blocks == b.app_blocks &&
      a.app_bytes == b.app_bytes && a.io_time_s == b.io_time_s &&
      a.iops == b.iops && a.arpt_s == b.arpt_s && a.bps == b.bps &&
      a.peak_concurrency == b.peak_concurrency;
  if (!same) {
    std::fprintf(stderr, "FAIL: %s differs\n  streaming:    %s\n  batch:        %s\n",
                 what, a.to_string().c_str(), b.to_string().c_str());
  }
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  long long records_arg = 4'096'000;
  long long chunk_arg = static_cast<long long>(trace::kDefaultSourceChunk);

  cli::ArgParser parser("bench_trace_stream",
                        "Peak-RSS check: streaming vs materialized metric "
                        "computation over a spilled trace must be "
                        "bit-identical at O(chunk) memory.");
  parser.add_int("--records", &records_arg, 1, 1'000'000'000, "N",
                 "trace length in records (default 4096000)");
  parser.add_int("--chunk", &chunk_arg, 1, 1'000'000'000, "N",
                 "streaming chunk size in records (default 16384)");
  std::vector<std::string> positionals;
  switch (parser.parse(argc, argv, positionals)) {
    case cli::ArgParser::Outcome::help: return 0;
    case cli::ArgParser::Outcome::error: return 2;
    case cli::ArgParser::Outcome::ok: break;
  }
  const auto records = static_cast<std::uint64_t>(records_arg);
  const auto chunk = static_cast<std::size_t>(chunk_arg);
  const Bytes moved = records * 4 * kKiB;
  const SimDuration exec = SimDuration(static_cast<std::int64_t>(records) * 60);
  const std::string path = "/tmp/bpsio_bench_trace_stream.bpstrace";

  std::printf("=== streaming vs materialized metrics: %llu records (%.1f MiB on disk) ===\n",
              static_cast<unsigned long long>(records),
              static_cast<double>(records) * sizeof(trace::IoRecord) /
                  (1024.0 * 1024.0));

  // Write the trace with the bounded-memory writer (never holds > 4096
  // records), so generation itself cannot inflate the baseline RSS.
  {
    trace::SpillWriter writer(path);
    for (std::uint64_t i = 0; i < records; ++i) {
      writer.append(synthetic_record(i));
    }
    if (!writer.close().ok()) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
      return 1;
    }
  }

  // Pass 1 — streaming (must run first: ru_maxrss never decreases).
  const long rss_before_stream = peak_rss_kib();
  trace::SpilledTraceSource source(path, chunk);
  const auto streamed = metrics::measure_stream(source, moved, exec);
  const long stream_growth = peak_rss_kib() - rss_before_stream;
  if (!streamed.ok()) {
    std::fprintf(stderr, "FAIL: streaming measure: %s\n",
                 streamed.error().message.c_str());
    return 1;
  }

  // Pass 2 — materialized batch path.
  const long rss_before_batch = peak_rss_kib();
  metrics::MetricSample batch;
  {
    const auto loaded = trace::load_binary(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "FAIL: load_binary: %s\n",
                   loaded.error().message.c_str());
      return 1;
    }
    trace::TraceCollector collector;
    collector.gather(*loaded);
    batch = metrics::measure_run(collector, moved, exec);
  }
  const long batch_growth = peak_rss_kib() - rss_before_batch;

  std::printf("  streaming: %s\n", streamed->to_string().c_str());
  std::printf("  rss growth: streaming %+ld KiB (chunk=%zu records), "
              "materialized %+ld KiB\n",
              stream_growth, chunk, batch_growth);
  std::remove(path.c_str());

  int failures = 0;
  if (!identical(*streamed, batch, "streaming vs materialized sample")) {
    ++failures;
  }
  // Flat-memory check, deliberately generous: the streaming pass may grow by
  // its chunk buffer plus allocator slack, never by anything proportional to
  // the trace. 16 MiB is ~3% of the full-mode trace's materialized footprint.
  const long stream_budget_kib =
      16 * 1024 + static_cast<long>(chunk * sizeof(trace::IoRecord) / 1024);
  if (stream_growth > stream_budget_kib) {
    std::fprintf(stderr,
                 "FAIL: streaming pass grew %ld KiB (budget %ld KiB) — "
                 "something materialized the trace\n",
                 stream_growth, stream_budget_kib);
    ++failures;
  }
  // The materialized path must actually pay for the records (one full copy
  // at minimum), otherwise this harness is not measuring what it claims.
  const long one_copy_kib =
      static_cast<long>(records * sizeof(trace::IoRecord) / 1024);
  if (batch_growth < one_copy_kib) {
    std::fprintf(stderr,
                 "FAIL: materialized pass grew only %ld KiB (< one record "
                 "copy %ld KiB) — baseline invalid\n",
                 batch_growth, one_copy_kib);
    ++failures;
  }
  if (failures == 0) {
    std::printf("OK: identical samples, streaming memory flat\n");
    return 0;
  }
  return 1;
}
