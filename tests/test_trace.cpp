#include <gtest/gtest.h>

#include <sstream>

#include "trace/io_record.hpp"
#include "trace/serialize.hpp"
#include "trace/trace_buffer.hpp"
#include "trace/trace_collector.hpp"
#include "trace/validate.hpp"

namespace bpsio::trace {
namespace {

TEST(IoRecord, Is32BytesAsInPaper) {
  // "As the size of each record is 32 bytes, even for 65535 I/O operations,
  //  all the records need about 3 megabytes".
  EXPECT_EQ(sizeof(IoRecord), 32u);
  EXPECT_LE(65535 * sizeof(IoRecord), 3u * 1024 * 1024);
}

TEST(IoRecord, AccessorsAndValidity) {
  const auto r = make_record(3, 100, SimTime(10), SimTime(50),
                             IoOpKind::write, kIoFailed);
  EXPECT_EQ(r.pid, 3u);
  EXPECT_EQ(r.blocks, 100u);
  EXPECT_EQ(r.start().ns(), 10);
  EXPECT_EQ(r.end().ns(), 50);
  EXPECT_EQ(r.response_time().ns(), 40);
  EXPECT_TRUE(r.failed());
  EXPECT_TRUE(r.valid());
  auto bad = r;
  bad.end_ns = 5;
  EXPECT_FALSE(bad.valid());
}

TEST(TraceBuffer, RecordsAndTotals) {
  TraceBuffer buf(7);
  buf.record(10, SimTime(0), SimTime(100));
  buf.record(20, SimTime(100), SimTime(250), IoOpKind::write);
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.total_blocks(), 30u);
  EXPECT_EQ(buf.records()[0].pid, 7u);
  EXPECT_EQ(buf.footprint_bytes(), 64u);
}

TEST(TraceBuffer, PushOverridesPid) {
  TraceBuffer buf(9);
  buf.push(make_record(1, 5, SimTime(0), SimTime(1)));
  EXPECT_EQ(buf.records()[0].pid, 9u);
}

TEST(TraceCollector, GathersAcrossProcesses) {
  TraceBuffer a(1), b(2);
  a.record(10, SimTime(0), SimTime(100));
  b.record(20, SimTime(50), SimTime(150));
  TraceCollector c;
  c.gather(a);
  c.gather(b);
  EXPECT_EQ(c.record_count(), 2u);
  EXPECT_EQ(c.total_blocks(), 30u);
  EXPECT_EQ(c.total_bytes(), 30u * 512);
  EXPECT_EQ(c.process_count(), 2u);
  const auto span = c.span();
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(span->start_ns, 0);
  EXPECT_EQ(span->end_ns, 150);
}

TEST(TraceCollector, EmptySpanIsNull) {
  TraceCollector c;
  EXPECT_FALSE(c.span().has_value());
  EXPECT_EQ(c.total_blocks(), 0u);
}

TEST(TraceCollector, FailedAccessesStillCountInB) {
  // Section III.A: "all the I/O blocks issued from the application are
  // counted, including all successful accesses, non-successful ones".
  TraceCollector c;
  c.add(make_record(1, 10, SimTime(0), SimTime(1)));
  c.add(make_record(1, 5, SimTime(1), SimTime(2), IoOpKind::read, kIoFailed));
  EXPECT_EQ(c.total_blocks(), 15u);
  RecordFilter no_failed;
  no_failed.include_failed = false;
  EXPECT_EQ(c.total_blocks(no_failed), 10u);
}

TEST(RecordFilter, ByPidAndOp) {
  TraceCollector c;
  c.add(make_record(1, 10, SimTime(0), SimTime(1), IoOpKind::read));
  c.add(make_record(2, 20, SimTime(0), SimTime(1), IoOpKind::write));
  RecordFilter f;
  f.pid = 2;
  EXPECT_EQ(c.total_blocks(f), 20u);
  RecordFilter g;
  g.op = IoOpKind::read;
  EXPECT_EQ(c.total_blocks(g), 10u);
}

TEST(RecordFilter, TimeWindowClampsIntervals) {
  TraceCollector c;
  c.add(make_record(1, 10, SimTime(0), SimTime(100)));
  RecordFilter f;
  f.window_start_ns = 25;
  f.window_end_ns = 75;
  const auto ivs = c.col_time(f);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0].start_ns, 25);
  EXPECT_EQ(ivs[0].end_ns, 75);
  // Outside the window entirely -> excluded.
  RecordFilter g;
  g.window_start_ns = 200;
  EXPECT_TRUE(c.col_time(g).empty());
}

TEST(Serialize, BinaryRoundTrip) {
  std::vector<IoRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back(make_record(static_cast<std::uint32_t>(i % 4),
                                  static_cast<std::uint64_t>(i * 3),
                                  SimTime(i * 10), SimTime(i * 10 + 5),
                                  i % 2 ? IoOpKind::write : IoOpKind::read));
  }
  std::stringstream ss;
  const auto written = write_binary(ss, records);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(*written, sizeof(TraceHeader) + 100 * sizeof(IoRecord));
  const auto loaded = read_binary(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, records);
}

TEST(Serialize, BinaryRejectsGarbage) {
  std::stringstream ss;
  ss << "this is not a trace";
  EXPECT_EQ(read_binary(ss).code(), Errc::invalid_argument);
}

TEST(Serialize, BinaryRejectsTruncation) {
  std::vector<IoRecord> records(10);
  std::stringstream ss;
  ASSERT_TRUE(write_binary(ss, records).ok());
  std::string data = ss.str();
  data.resize(data.size() - 17);
  std::stringstream truncated(data);
  EXPECT_EQ(read_binary(truncated).code(), Errc::io_error);
}

TEST(Serialize, CsvRoundTrip) {
  std::vector<IoRecord> records{
      make_record(1, 8, SimTime(0), SimTime(1000)),
      make_record(2, 16, SimTime(500), SimTime(2500), IoOpKind::write,
                  kIoFailed),
  };
  std::stringstream ss;
  write_csv(ss, records);
  const auto loaded = read_csv(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, records);
}

TEST(Serialize, CsvRejectsMalformedLine) {
  std::stringstream ss("pid,op,flags,blocks,start_ns,end_ns\n1,read,0\n");
  EXPECT_EQ(read_csv(ss).code(), Errc::invalid_argument);
}

TEST(Validate, FlagsBadRecords) {
  std::vector<IoRecord> records{
      make_record(1, 8, SimTime(10), SimTime(5)),   // end < start
      make_record(1, 0, SimTime(0), SimTime(1)),    // zero blocks, success
      make_record(1, 8, SimTime(-5), SimTime(1)),   // negative start
  };
  const auto report = validate(records);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.issues.size(), 3u);
  EXPECT_EQ(report.checked, 3u);
}

TEST(Validate, AcceptsZeroDurationRecords) {
  // Regression: real sub-tick syscalls captured by the LD_PRELOAD interposer
  // produce end == start records; only simulated (always-positive) durations
  // were exercised before. Zero duration is valid — it contributes to B but
  // adds nothing to T.
  std::vector<IoRecord> records{
      make_record(1, 8, SimTime(100), SimTime(100)),
      make_record(1, 8, SimTime(100), SimTime(100), IoOpKind::write),
      make_record(2, 1, SimTime(0), SimTime(0)),
  };
  const auto report = validate(records);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(validate(records, /*expect_per_pid_monotone=*/true).ok());
}

TEST(Validate, AcceptsZeroBlockSyncRecords) {
  // fsync captured from a real program: occupies I/O time, moves no blocks.
  std::vector<IoRecord> records{
      make_record(1, 0, SimTime(10), SimTime(20), IoOpKind::write, kIoSync),
  };
  EXPECT_TRUE(validate(records).ok());
  // The same zero-block record without the sync flag is still an issue.
  records[0].flags = kIoOk;
  EXPECT_FALSE(validate(records).ok());
}

TEST(Validate, MonotoneCheckPerPid) {
  std::vector<IoRecord> records{
      make_record(1, 8, SimTime(10), SimTime(20)),
      make_record(2, 8, SimTime(0), SimTime(5)),   // other pid: fine
      make_record(1, 8, SimTime(5), SimTime(15)),  // pid 1 went backwards
  };
  EXPECT_TRUE(validate(records, false).ok());
  const auto report = validate(records, true);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].index, 2u);
}

}  // namespace
}  // namespace bpsio::trace
