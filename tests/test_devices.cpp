#include <gtest/gtest.h>

#include <vector>

#include "device/hdd_model.hpp"
#include "device/ram_device.hpp"
#include "device/ssd_model.hpp"
#include "sim/simulator.hpp"

namespace bpsio::device {
namespace {

struct Completion {
  DevResult result;
  bool fired = false;
};

DevDoneFn capture(Completion& c) {
  return [&c](DevResult r) {
    c.result = r;
    c.fired = true;
  };
}

HddParams test_hdd() {
  HddParams p;
  p.capacity = 8 * kGiB;
  p.deterministic_rotation = true;  // reproducible service times
  return p;
}

TEST(Hdd, SequentialReadsSkipSeekAndRotation) {
  sim::Simulator sim;
  HddModel hdd(sim, test_hdd());
  const Bytes base = 1 * kGiB;  // away from the parked head
  Completion first, second;
  hdd.submit(DevOp::read, base, 64 * kKiB, capture(first));
  sim.run();
  hdd.submit(DevOp::read, base + 64 * kKiB, 64 * kKiB, capture(second));
  sim.run();
  ASSERT_TRUE(first.fired && second.fired);
  const auto t1 = (first.result.end - first.result.start).ns();
  const auto t2 = (second.result.end - second.result.start).ns();
  // The first request pays seek+rotation to reach `base`; the sequential
  // continuation pays only command overhead + transfer.
  EXPECT_GT(t1, t2 + SimDuration::from_ms(1.0).ns());
  const double expected_xfer =
      64.0 * 1024.0 / hdd.transfer_rate_bps(base + 64 * kKiB);
  EXPECT_NEAR(static_cast<double>(t2) * 1e-9,
              hdd.params().command_overhead.seconds() + expected_xfer,
              20e-6);
}

TEST(Hdd, RandomReadsPaySeekAndRotation) {
  sim::Simulator sim;
  HddModel hdd(sim, test_hdd());
  Completion warm, far;
  hdd.submit(DevOp::read, 0, 4 * kKiB, capture(warm));
  sim.run();
  hdd.submit(DevOp::read, 4 * kGiB, 4 * kKiB, capture(far));
  sim.run();
  const auto t_far = (far.result.end - far.result.start).seconds();
  // Half-capacity seek + half-rotation (deterministic) dominate a 4 KiB read.
  EXPECT_GT(t_far, 0.004);  // > 4 ms
}

TEST(Hdd, SeekTimeMonotoneInDistance) {
  sim::Simulator sim;
  HddModel hdd(sim, test_hdd());
  SimDuration prev = SimDuration::zero();
  for (Bytes dist : {1 * kMiB, 64 * kMiB, 1 * kGiB, 4 * kGiB}) {
    const auto t = hdd.seek_time(0, dist);
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_EQ(hdd.seek_time(100, 100).ns(), 0);
  // Within the sequential window: settle only.
  EXPECT_EQ(hdd.seek_time(0, 4 * kKiB), hdd.params().settle_time);
  // Full stroke approaches max_seek.
  EXPECT_LE(hdd.seek_time(0, hdd.capacity()), hdd.params().max_seek);
  EXPECT_GT(hdd.seek_time(0, hdd.capacity()).seconds(),
            hdd.params().max_seek.seconds() * 0.9);
}

TEST(Hdd, ZonedTransferOuterFasterThanInner) {
  sim::Simulator sim;
  HddModel hdd(sim, test_hdd());
  EXPECT_GT(hdd.transfer_rate_bps(0), hdd.transfer_rate_bps(hdd.capacity()));
  EXPECT_NEAR(hdd.transfer_rate_bps(0), hdd.params().outer_rate_mbps * 1e6, 1);
  EXPECT_NEAR(hdd.transfer_rate_bps(hdd.capacity()),
              hdd.params().inner_rate_mbps * 1e6, 1);
}

TEST(Hdd, StatsAccumulate) {
  sim::Simulator sim;
  HddModel hdd(sim, test_hdd());
  hdd.submit(DevOp::read, 0, 4096, [](DevResult) {});
  hdd.submit(DevOp::write, 4096, 8192, [](DevResult) {});
  sim.run();
  EXPECT_EQ(hdd.stats().read_ops, 1u);
  EXPECT_EQ(hdd.stats().write_ops, 1u);
  EXPECT_EQ(hdd.stats().bytes_read, 4096u);
  EXPECT_EQ(hdd.stats().bytes_written, 8192u);
  EXPECT_GT(hdd.stats().busy_time.ns(), 0);
  hdd.clear_stats();
  EXPECT_EQ(hdd.stats().total_ops(), 0u);
}

TEST(Hdd, FaultInjection) {
  sim::Simulator sim;
  HddParams params = test_hdd();
  params.faults.failure_rate = 1.0;  // always fail
  HddModel hdd(sim, params);
  Completion c;
  hdd.submit(DevOp::read, 0, 4096, capture(c));
  sim.run();
  ASSERT_TRUE(c.fired);
  EXPECT_FALSE(c.result.ok);
  EXPECT_EQ(hdd.stats().failed_ops, 1u);
  EXPECT_EQ(hdd.stats().bytes_read, 0u);  // failed transfer moves nothing
}

TEST(Hdd, ResetStateForgetsHeadPosition) {
  sim::Simulator sim;
  HddModel hdd(sim, test_hdd());
  Completion a, b;
  hdd.submit(DevOp::read, 0, 64 * kKiB, capture(a));
  sim.run();
  hdd.reset_state();
  // After reset the head is parked again: same cost as a cold first read.
  hdd.submit(DevOp::read, 64 * kKiB, 64 * kKiB, capture(b));
  sim.run();
  EXPECT_GT((b.result.end - b.result.start).ns(),
            hdd.params().command_overhead.ns());
}

TEST(Ssd, NominalServiceTime) {
  sim::Simulator sim;
  SsdParams params;
  params.jitter = 0.0;
  SsdModel ssd(sim, params);
  const auto t = ssd.nominal_service_time(DevOp::read, 1 * kMiB);
  EXPECT_NEAR(t.seconds(),
              params.read_latency.seconds() +
                  1048576.0 / (params.channel_rate_mbps * 1e6),
              1e-9);
  EXPECT_GT(ssd.nominal_service_time(DevOp::write, 4096),
            ssd.nominal_service_time(DevOp::read, 4096));
}

TEST(Ssd, ChannelsServeConcurrently) {
  sim::Simulator sim;
  SsdParams params;
  params.channels = 4;
  params.jitter = 0.0;
  SsdModel ssd(sim, params);
  std::vector<Completion> done(8);
  for (auto& c : done) ssd.submit(DevOp::read, 0, 1 * kMiB, capture(c));
  sim.run();
  const auto single = ssd.nominal_service_time(DevOp::read, 1 * kMiB);
  // 8 jobs over 4 channels: two waves.
  EXPECT_NEAR(sim.now().seconds(), 2 * single.seconds(), 1e-9);
}

TEST(Ssd, JitterStaysBounded) {
  sim::Simulator sim;
  SsdParams params;
  params.jitter = 0.1;
  params.channels = 1;
  SsdModel ssd(sim, params);
  const auto nominal = ssd.nominal_service_time(DevOp::read, 64 * kKiB);
  for (int i = 0; i < 50; ++i) {
    Completion c;
    ssd.submit(DevOp::read, 0, 64 * kKiB, capture(c));
    sim.run();
    const double t = (c.result.end - c.result.start).seconds();
    EXPECT_GE(t, nominal.seconds() * 0.9 - 1e-9);
    EXPECT_LE(t, nominal.seconds() * 1.1 + 1e-9);
  }
}

TEST(Ram, FastAndCounted) {
  sim::Simulator sim;
  RamDevice ram(sim);
  Completion c;
  ram.submit(DevOp::write, 0, 1 * kMiB, capture(c));
  sim.run();
  ASSERT_TRUE(c.fired);
  EXPECT_TRUE(c.result.ok);
  EXPECT_LT((c.result.end - c.result.start).seconds(), 1e-3);
  EXPECT_EQ(ram.stats().bytes_written, kMiB);
}

TEST(Devices, DescribeIsNonEmpty) {
  sim::Simulator sim;
  HddModel hdd(sim, test_hdd());
  SsdModel ssd(sim, SsdParams{});
  RamDevice ram(sim);
  EXPECT_FALSE(hdd.describe().empty());
  EXPECT_FALSE(ssd.describe().empty());
  EXPECT_FALSE(ram.describe().empty());
}

}  // namespace
}  // namespace bpsio::device
