// Figures 1 & 2 — the paper's motivating examples, reproduced numerically.
//
// Figure 1 shows three pairs of two-request scenarios in which IOPS,
// bandwidth, and ARPT each fail to rank the better-performing I/O system;
// Figure 2 shows how the overlapped time T is measured for four requests.
// This bench builds those exact record sets and prints every metric.
#include <cstdio>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "metrics/calculators.hpp"
#include "metrics/overlap.hpp"
#include "tools/cli.hpp"
#include "trace/trace_collector.hpp"

using namespace bpsio;

namespace {

constexpr std::int64_t kMs = 1'000'000;  // ns per ms

metrics::MetricSample measure(const std::vector<trace::IoRecord>& records,
                              Bytes moved, std::int64_t exec_ns) {
  trace::TraceCollector collector;
  collector.gather(records);
  return metrics::measure_run(collector, moved, SimDuration(exec_ns));
}

void print_case(const char* label, const metrics::MetricSample& s) {
  std::printf("  %-28s exec=%5.1fms IOPS=%7.1f BW=%8.3fMB/s ARPT=%5.2fms "
              "BPS=%9.1f\n",
              label, s.exec_time_s * 1e3, s.iops, s.bandwidth_bps / 1e6,
              s.arpt_s * 1e3, s.bps);
}

}  // namespace

int main(int argc, char** argv) {
  // Fixed record sets straight from the paper — no knobs, but --help and
  // unknown-flag rejection must behave like every other bpsio binary.
  cli::ArgParser parser(argv[0] != nullptr ? argv[0] : "bench_fig1_concepts",
                        "Reproduce the paper's Figure 1/2 motivating examples "
                        "numerically (fixed workload, no options).");
  std::vector<std::string> positionals;
  switch (parser.parse(argc, argv, positionals)) {
    case cli::ArgParser::Outcome::help: return 0;
    case cli::ArgParser::Outcome::error: return 2;
    case cli::ArgParser::Outcome::ok: break;
  }
  if (!positionals.empty()) {
    std::fprintf(stderr, "%s: unexpected operand '%s'\n%s", argv[0],
                 positionals.front().c_str(), parser.usage().c_str());
    return 2;
  }

  using trace::make_record;
  const std::uint64_t S = 8;            // request size in 512 B blocks (4 KiB)
  const Bytes S_bytes = S * 512;

  std::printf("=== Figure 1(a): different I/O sizes — IOPS is blind ===\n");
  // Left: two S-sized requests back to back. Right: one merged 2S request
  // finishing in half the time. IOPS says they are equal; the right case is
  // plainly better (half the execution time).
  const auto a_left = measure({make_record(1, S, SimTime(0), SimTime(kMs)),
                               make_record(1, S, SimTime(kMs), SimTime(2 * kMs))},
                              2 * S_bytes, 2 * kMs);
  const auto a_right = measure({make_record(1, 2 * S, SimTime(0), SimTime(kMs))},
                               2 * S_bytes, kMs);
  print_case("left  (2 x S, serial)", a_left);
  print_case("right (1 x 2S, merged)", a_right);
  std::printf("  -> IOPS identical (%.1f vs %.1f); BPS correctly prefers the "
              "right case (%.1f vs %.1f)\n\n",
              a_left.iops, a_right.iops, a_left.bps, a_right.bps);

  std::printf("=== Figure 1(b): different actual data movement — BW is blind ===\n");
  // Same two application requests and the same times, but the right case's
  // I/O stack moves twice the data (sieving holes): its file-system
  // bandwidth looks 2x better while the application sees no difference.
  const auto b_records =
      std::vector<trace::IoRecord>{make_record(1, S, SimTime(0), SimTime(kMs)),
                                   make_record(1, S, SimTime(kMs), SimTime(2 * kMs))};
  const auto b_left = measure(b_records, 2 * S_bytes, 2 * kMs);
  const auto b_right = measure(b_records, 4 * S_bytes, 2 * kMs);
  print_case("left  (moves 2S)", b_left);
  print_case("right (moves 4S)", b_right);
  std::printf("  -> BW doubles (%.3f vs %.3f MB/s) with zero application "
              "benefit; BPS is unchanged (%.1f vs %.1f)\n\n",
              b_left.bandwidth_bps / 1e6, b_right.bandwidth_bps / 1e6,
              b_left.bps, b_right.bps);

  std::printf("=== Figure 1(c): different concurrency — ARPT is blind ===\n");
  // Left: sequential requests. Right: the same two requests concurrent.
  const auto c_left = measure({make_record(1, S, SimTime(0), SimTime(kMs)),
                               make_record(1, S, SimTime(kMs), SimTime(2 * kMs))},
                              2 * S_bytes, 2 * kMs);
  const auto c_right = measure({make_record(1, S, SimTime(0), SimTime(kMs)),
                                make_record(2, S, SimTime(0), SimTime(kMs))},
                               2 * S_bytes, kMs);
  print_case("left  (serial)", c_left);
  print_case("right (concurrent)", c_right);
  std::printf("  -> ARPT identical (%.2f vs %.2f ms); BPS correctly prefers "
              "the concurrent case (%.1f vs %.1f)\n\n",
              c_left.arpt_s * 1e3, c_right.arpt_s * 1e3, c_left.bps,
              c_right.bps);

  std::printf("=== Figure 2: overlapped time T for four requests ===\n");
  // R1..R3 overlap pairwise (union [0,6) ms), R4 stands alone ([7,9) ms);
  // the idle gap [6,7) is excluded: T = dt1 + dt2 = 6 + 2 = 8 ms.
  std::vector<trace::TimeInterval> col_time = {
      {0 * kMs, 4 * kMs},   // R1
      {1 * kMs, 2 * kMs},   // R2 (contained in R1)
      {2 * kMs, 6 * kMs},   // R3 (extends R1)
      {7 * kMs, 9 * kMs},   // R4 (after an idle gap)
  };
  const auto t_paper = metrics::overlap_time_paper(col_time);
  const auto t_merged = metrics::overlap_time_merged(col_time);
  std::int64_t sum = 0;
  for (const auto& iv : col_time) sum += iv.end_ns - iv.start_ns;
  std::printf("  sum of durations   : %.0f ms (naive, double-counts overlap)\n",
              static_cast<double>(sum) / kMs);
  std::printf("  T (Figure 3, paper): %.0f ms\n", t_paper.seconds() * 1e3);
  std::printf("  T (sort-and-merge) : %.0f ms\n", t_merged.seconds() * 1e3);
  std::printf("  idle time excluded : %.0f ms\n",
              metrics::idle_time(col_time).seconds() * 1e3);
  return 0;
}
