// Quickstart: measure BPS (and the conventional metrics) for a simple
// workload on a simulated parallel file system.
//
//   build/examples/quickstart [--servers=4] [--procs=4] [--file=256M]
//                             [--record=64k] [--seed=42]
//
// This is the ~30-line tour of the public API: build a testbed, run a
// workload, feed the gathered trace to BpsMeter, print the reading.
#include <cstdio>

#include "common/config.hpp"
#include "common/format.hpp"
#include "core/bps_meter.hpp"
#include "core/presets.hpp"
#include "core/testbed.hpp"
#include "workload/registry.hpp"

using namespace bpsio;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc - 1, argv + 1);

  // 1. A testbed: PVFS2-like cluster with N HDD-backed I/O servers.
  auto testbed_cfg = core::pvfs_testbed(
      static_cast<std::uint32_t>(cfg.get_int("servers", 4)),
      pfs::DeviceKind::hdd,
      /*clients=*/static_cast<std::uint32_t>(cfg.get_int("procs", 4)),
      cfg.get_int("seed", 42));
  core::Testbed testbed(testbed_cfg);
  testbed.drop_caches();  // paper discipline: cold caches

  // 2. A workload: IOzone-style concurrent sequential readers.
  workload::IozoneConfig wl;
  wl.mode = workload::IozoneConfig::Mode::read;
  wl.file_size = cfg.get_bytes("file", 256 * kMiB);
  wl.record_size = cfg.get_bytes("record", 64 * kKiB);
  wl.processes = static_cast<std::uint32_t>(cfg.get_int("procs", 4));
  const workload::WorkloadPtr wkl = workload::make_workload(wl);
  const workload::RunResult run = wkl->run(testbed.env());

  // 3. The BPS methodology: gather all processes' records, measure.
  core::BpsMeter meter;
  meter.gather(run.collector.records());
  const core::BpsReading reading = meter.measure();

  std::printf("testbed : %s\n", testbed.describe().c_str());
  std::printf("workload: %u procs x %s, %s records\n", wl.processes,
              human_bytes(wl.file_size / wl.processes).c_str(),
              human_bytes(wl.record_size).c_str());
  std::printf("exec    : %.3f s\n", run.exec_time.seconds());
  std::printf("%s\n", reading.to_string().c_str());

  // Side-by-side with the conventional metrics.
  const auto sample = meter.measure_all(testbed.bytes_moved(), run.exec_time);
  std::printf("metrics : %s\n", sample.to_string().c_str());
  return 0;
}
