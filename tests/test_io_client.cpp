// The instrumented I/O library — Step 1 of the BPS methodology. These tests
// pin down what gets recorded: one record per application access, sized at
// the application-required bytes, spanning the full middleware interval,
// with failures flagged but still counted.
#include <gtest/gtest.h>

#include "device/ram_device.hpp"
#include "fs/local_fs.hpp"
#include "mio/io_client.hpp"
#include "sim/simulator.hpp"

namespace bpsio::mio {
namespace {

struct Fixture {
  sim::Simulator sim;
  device::RamDevice dev{sim, device::RamParams{.capacity = 64 * kMiB}};
  fs::LocalFileSystem fs{sim, dev};
  ClientNode node{sim};
  IoClient client{node, fs, 42};

  fs::FileHandle make_file(Bytes size) {
    auto h = client.create("/f", size);
    EXPECT_TRUE(h.ok());
    return *h;
  }
  fs::IoOutcome read(fs::FileHandle h, Bytes off, Bytes size) {
    fs::IoOutcome out{false, 0};
    client.read(h, off, size, [&](fs::IoOutcome o) { out = o; });
    sim.run();
    return out;
  }
  fs::IoOutcome write(fs::FileHandle h, Bytes off, Bytes size) {
    fs::IoOutcome out{false, 0};
    client.write(h, off, size, [&](fs::IoOutcome o) { out = o; });
    sim.run();
    return out;
  }
};

TEST(IoClient, RecordsOneRecordPerAccess) {
  Fixture f;
  auto h = f.make_file(1 * kMiB);
  f.read(h, 0, 64 * kKiB);
  f.read(h, 64 * kKiB, 64 * kKiB);
  f.write(h, 0, 4 * kKiB);
  ASSERT_EQ(f.client.trace().size(), 3u);
  const auto& records = f.client.trace().records();
  EXPECT_EQ(records[0].pid, 42u);
  EXPECT_EQ(records[0].blocks, bytes_to_blocks(64 * kKiB));
  EXPECT_EQ(records[0].op, trace::IoOpKind::read);
  EXPECT_EQ(records[2].op, trace::IoOpKind::write);
  EXPECT_EQ(records[2].blocks, bytes_to_blocks(4 * kKiB));
}

TEST(IoClient, RecordSpansTheWholeMiddlewareInterval) {
  Fixture f;
  auto h = f.make_file(1 * kMiB);
  const SimTime before = f.sim.now();
  f.read(h, 0, 64 * kKiB);
  const auto& r = f.client.trace().records().front();
  EXPECT_EQ(r.start_ns, before.ns());
  EXPECT_GT(r.end_ns, r.start_ns);
  // The interval includes per-op CPU overhead, so it exceeds raw device time.
  EXPECT_GE(r.response_time(), f.node.params().per_op_overhead);
}

TEST(IoClient, RecordsRequestedNotDeliveredSize) {
  // A read past EOF delivers fewer bytes, but B counts what the application
  // asked for — the record keeps the requested size.
  Fixture f;
  auto h = f.make_file(10 * kKiB);
  const auto out = f.read(h, 8 * kKiB, 64 * kKiB);
  EXPECT_EQ(out.bytes, 2u * kKiB);
  EXPECT_EQ(f.client.trace().records().front().blocks,
            bytes_to_blocks(64 * kKiB));
}

TEST(IoClient, FailedAccessesFlaggedButCounted) {
  Fixture f;
  const auto out = f.read(fs::FileHandle{999}, 0, 4 * kKiB);  // bad handle
  EXPECT_FALSE(out.ok);
  ASSERT_EQ(f.client.trace().size(), 1u);
  EXPECT_TRUE(f.client.trace().records().front().failed());
  EXPECT_EQ(f.client.trace().total_blocks(), bytes_to_blocks(4 * kKiB));
}

TEST(IoClient, UnrecordedBackendReadLeavesNoTrace) {
  Fixture f;
  auto h = f.make_file(1 * kMiB);
  bool done = false;
  f.client.backend_read_unrecorded(h, 0, 64 * kKiB,
                                   [&](fs::IoOutcome) { done = true; });
  f.sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(f.client.trace().empty());
}

TEST(IoClient, SharedNodeCpuSerializesBeyondCoreCount) {
  // More concurrent ops than cores -> CPU-stage queueing stretches the
  // later records' intervals.
  sim::Simulator sim;
  device::RamDevice dev(sim, device::RamParams{.capacity = 64 * kMiB});
  fs::LocalFileSystem fs(sim, dev);
  ClientNodeParams params;
  params.cores = 1;
  params.per_op_overhead = SimDuration::from_us(100.0);
  ClientNode node(sim, params);
  IoClient a(node, fs, 1), b(node, fs, 2);
  auto h = a.create("/f", kMiB);
  a.read(*h, 0, 4 * kKiB, [](fs::IoOutcome) {});
  b.read(*h, 0, 4 * kKiB, [](fs::IoOutcome) {});
  sim.run();
  const auto& ra = a.trace().records().front();
  const auto& rb = b.trace().records().front();
  // Same submit time, but the single core serializes the 100 us op setup.
  EXPECT_EQ(ra.start_ns, rb.start_ns);
  EXPECT_GE(std::max(ra.end_ns, rb.end_ns) - ra.start_ns,
            2 * params.per_op_overhead.ns());
}

TEST(IoClient, WriteChargesCopyInUpFront) {
  Fixture f;
  auto h = f.make_file(0);
  f.write(h, 0, 1 * kMiB);
  const auto& r = f.client.trace().records().front();
  EXPECT_GE(r.response_time().ns(),
            (f.node.params().per_op_overhead + f.node.copy_time(kMiB)).ns());
}

TEST(IoClient, CustomBlockSize) {
  sim::Simulator sim;
  device::RamDevice dev(sim, device::RamParams{.capacity = 64 * kMiB});
  fs::LocalFileSystem fs(sim, dev);
  ClientNode node(sim);
  IoClient client(node, fs, 1, /*block_size=*/4096);
  auto h = client.create("/f", 64 * kKiB);
  client.read(*h, 0, 64 * kKiB, [](fs::IoOutcome) {});
  sim.run();
  EXPECT_EQ(client.trace().records().front().blocks, 16u);
}

}  // namespace
}  // namespace bpsio::mio
