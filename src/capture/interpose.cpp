// LD_PRELOAD interposer over the POSIX I/O family — the paper's capture
// point, realized: "the I/O function library is modified to record the
// information of each I/O access" (Section III.B), except nothing is
// modified — the dynamic linker resolves open/read/write/... to the
// wrappers below, which stamp CLOCK_MONOTONIC around the real call and
// append a 32-byte IoRecord to a lock-free per-thread buffer. Buffers
// spill to per-thread .bpstrace v2 files through SpillWriter; every
// spill ends in a header checkpoint, so a traced process that dies
// without running atexit still leaves a readable trace.
//
// Ground rules for code in this file (it runs inside OTHER PEOPLE'S
// processes):
//
//  * Never abort the host. No BPSIO_CHECK, no exceptions escaping a
//    wrapper, no exit on error — a broken output directory degrades to
//    passthrough with one stderr warning.
//  * Preserve errno. The host application's error handling reads errno
//    after every call we wrap; the capture bookkeeping must be invisible.
//  * Guard against self-recording. SpillWriter's own open/write/close
//    land back in these wrappers (libstdc++ ofstream calls the PLT like
//    everyone else); a thread_local reentrancy depth drops them.
//  * No locks on the hot path. Each thread owns its buffer and its
//    writer outright; the only shared mutable state is atomics (the
//    runtime pointer, the cached pid, the fd-tracking table).
//
// Scope: only PLT calls to libc-exported symbols are interposable.
// glibc-internal I/O (the loader, stdio's internal syscalls when the
// host was linked -static) bypasses us — DESIGN.md §9 spells out the
// boundary.
#include <dlfcn.h>
#include <fcntl.h>
#include <pthread.h>
#include <unistd.h>

#include <atomic>
#include <array>
#include <cerrno>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "capture/capture_config.hpp"
#include "capture/record_shipper.hpp"
#include "common/wallclock.hpp"
#include "trace/io_record.hpp"

namespace bpsio::capture {
namespace {

using ReadFn = ssize_t (*)(int, void*, size_t);
using WriteFn = ssize_t (*)(int, const void*, size_t);
using PreadFn = ssize_t (*)(int, void*, size_t, off_t);
using PwriteFn = ssize_t (*)(int, const void*, size_t, off_t);
using Pread64Fn = ssize_t (*)(int, void*, size_t, off64_t);
using Pwrite64Fn = ssize_t (*)(int, const void*, size_t, off64_t);
using OpenFn = int (*)(const char*, int, mode_t);
using OpenatFn = int (*)(int, const char*, int, mode_t);
using CloseFn = int (*)(int);
using FsyncFn = int (*)(int);

/// Immutable after init; published through g_runtime with release ordering.
struct Runtime {
  CaptureConfig cfg;
};

std::atomic<Runtime*> g_runtime{nullptr};
std::atomic<std::uint32_t> g_pid{0};

/// Which fds were opened through the interposed open/openat family (and not
/// by the capture machinery itself). Indexed by fd; fds beyond the table are
/// simply not tracked. 64 KiB of zero-initialized statics — no constructor
/// ordering hazards.
constexpr int kMaxTrackedFd = 1 << 16;
std::array<std::atomic<unsigned char>, kMaxTrackedFd> g_fd_tracked{};

/// Reentrancy depth: >0 while capture bookkeeping (spill I/O, warnings) is
/// on the stack, so the wrappers pass its syscalls through unrecorded.
thread_local int t_in_capture = 0;

struct ReentrancyGuard {
  ReentrancyGuard() { ++t_in_capture; }
  ~ReentrancyGuard() { --t_in_capture; }
};

/// Set once the current thread's ThreadCapture has been destroyed. A
/// trivially destructible TLS flag stays readable after complex TLS objects
/// are torn down, so late I/O during thread exit is dropped instead of
/// resurrecting a destroyed buffer.
thread_local bool t_capture_dead = false;

std::uint32_t cached_pid() {
  const std::uint32_t pid = g_pid.load(std::memory_order_relaxed);
  return pid != 0 ? pid : static_cast<std::uint32_t>(::getpid());
}

/// Per-thread capture state: the lock-free record buffer plus the thread's
/// own transport (socket shipping with spill fallback — record_shipper.hpp).
/// No other thread ever touches an instance.
struct ThreadCapture {
  std::vector<trace::IoRecord> buffer;
  RecordShipper* shipper = nullptr;
  bool disabled = false;  ///< transport failed or already closed: drop records

  ThreadCapture();

  ~ThreadCapture() {
    ReentrancyGuard guard;
    flush_and_close();
    detach();
  }

  void detach();  // defined after the TLS mirrors below

  void append(const trace::IoRecord& record, const CaptureConfig& cfg) {
    if (disabled) return;
    // The guard covers buffer growth, not just the flush: reserve/push_back
    // may hit the allocator, and any syscall the allocator issues is capture
    // bookkeeping that must not be recorded (or recurse into append).
    ReentrancyGuard guard;
    if (buffer.capacity() == 0) buffer.reserve(cfg.buffer_records);
    buffer.push_back(record);
    if (buffer.size() >= cfg.buffer_records) flush(cfg);
  }

  /// Ship the buffer through the thread's transport. Caller holds the
  /// reentrancy guard. On transport failure, capture for this thread
  /// degrades to a silent drop (the shipper warns once per process).
  void flush(const CaptureConfig& cfg) {
    if (disabled || buffer.empty()) {
      buffer.clear();
      return;
    }
    if (shipper == nullptr) {
      shipper = new RecordShipper(cfg, cached_pid(),
                                  static_cast<std::uint32_t>(::gettid()));
    }
    if (!shipper->ship(buffer)) disabled = true;
    buffer.clear();
  }

  void flush_and_close() {
    Runtime* runtime = g_runtime.load(std::memory_order_acquire);
    if (runtime != nullptr) flush(runtime->cfg);
    if (shipper != nullptr) {
      shipper->close();
      delete shipper;
      shipper = nullptr;
    }
    disabled = true;  // records arriving after close have nowhere to go
  }

  /// Fork child: the inherited transport belongs to the parent — the socket
  /// reference is dropped and an inherited spill writer (with the parent's
  /// file offset) abandoned un-closed. Buffered records were flushed on the
  /// parent side by the fork prepare handler; the child starts fresh with a
  /// transport carrying its own pid.
  void abandon_after_fork() {
    buffer.clear();
    if (shipper != nullptr) {
      shipper->abandon_after_fork();
      delete shipper;
      shipper = nullptr;
    }
    disabled = false;
  }
};

/// Raw pointer mirror of the function-local TLS instance, so the fork and
/// atexit handlers can reach the current thread's state without
/// constructing it. Null before first record and again after teardown.
thread_local ThreadCapture* t_capture = nullptr;

ThreadCapture::ThreadCapture() { t_capture = this; }

void ThreadCapture::detach() {
  t_capture = nullptr;
  t_capture_dead = true;
}

ThreadCapture& thread_capture() {
  static thread_local ThreadCapture capture;
  return capture;
}

bool fd_tracked(int fd) {
  return fd >= 0 && fd < kMaxTrackedFd &&
         g_fd_tracked[static_cast<std::size_t>(fd)].load(
             std::memory_order_relaxed) != 0;
}

/// Should a call on `fd` produce a record right now?
bool should_record(int fd) {
  if (t_in_capture > 0 || t_capture_dead) return false;
  Runtime* runtime = g_runtime.load(std::memory_order_acquire);
  if (runtime == nullptr || !runtime->cfg.enabled) return false;
  if (fd < 0) return false;
  if (!runtime->cfg.capture_all_fds && !fd_tracked(fd)) return false;
  return fd_passes_filters(runtime->cfg, fd);
}

/// Build and buffer one record. `requested` is the byte count the
/// application asked for — B counts requested blocks even when the call
/// came back short or failed (Section III.A). Preserves errno across all
/// bookkeeping.
void record_io(trace::IoOpKind op, std::size_t requested, ssize_t ret,
               std::int64_t start_ns, std::int64_t end_ns,
               bool is_sync = false) {
  const int saved_errno = errno;
  Runtime* runtime = g_runtime.load(std::memory_order_acquire);
  if (runtime != nullptr) {
    trace::IoRecord record;
    record.pid = cached_pid();
    record.op = op;
    record.flags = static_cast<std::uint8_t>(
        (ret < 0 ? trace::kIoFailed : trace::kIoOk) |
        (is_sync ? trace::kIoSync : trace::kIoOk));
    record.blocks = is_sync ? 0 : requested_blocks(runtime->cfg, requested);
    record.start_ns = start_ns;
    record.end_ns = end_ns;
    thread_capture().append(record, runtime->cfg);
  }
  errno = saved_errno;
}

/// Successful open through the wrappers marks the fd as application I/O.
/// Capture-internal opens run under the reentrancy guard and stay
/// untracked — that is what keeps the trace file's own writes out of the
/// trace.
void note_open(int fd) {
  if (fd < 0 || fd >= kMaxTrackedFd) return;
  if (t_in_capture > 0) return;
  if (g_runtime.load(std::memory_order_acquire) == nullptr) return;
  g_fd_tracked[static_cast<std::size_t>(fd)].store(1,
                                                   std::memory_order_relaxed);
}

void note_close(int fd) {
  if (fd < 0 || fd >= kMaxTrackedFd) return;
  g_fd_tracked[static_cast<std::size_t>(fd)].store(0,
                                                   std::memory_order_relaxed);
}

void atfork_prepare() {
  Runtime* runtime = g_runtime.load(std::memory_order_acquire);
  if (runtime == nullptr || t_capture == nullptr) return;
  ReentrancyGuard guard;
  t_capture->flush(runtime->cfg);  // pre-fork records land on the parent side
}

void atfork_child() {
  g_pid.store(static_cast<std::uint32_t>(::getpid()),
              std::memory_order_relaxed);
  if (t_capture != nullptr) t_capture->abandon_after_fork();
}

void at_exit_flush() {
  // The exiting thread's TLS destructor also does this, but destructor
  // order versus atexit is subtle across libcs; flush_and_close is
  // idempotent, so run it from both.
  if (t_capture != nullptr) {
    ReentrancyGuard guard;
    t_capture->flush_and_close();
  }
}

const char* capture_getenv(const char* name) { return std::getenv(name); }

__attribute__((constructor)) void capture_init() {
  if (g_runtime.load(std::memory_order_acquire) != nullptr) return;
  std::vector<std::string> warnings;
  auto* runtime = new Runtime;
  runtime->cfg = parse_capture_config(capture_getenv, &warnings);
  for (const std::string& warning : warnings) {
    std::fprintf(stderr, "bpsio-capture: %s\n", warning.c_str());
  }
  g_pid.store(static_cast<std::uint32_t>(::getpid()),
              std::memory_order_relaxed);
  if (runtime->cfg.enabled) {
    ::pthread_atfork(atfork_prepare, nullptr, atfork_child);
    std::atexit(at_exit_flush);
  }
  g_runtime.store(runtime, std::memory_order_release);
}

/// dlsym(RTLD_NEXT) resolution of the real libc entry point. Each wrapper
/// caches its result in a function-local `static void* const` — a
/// thread-safe magic static, immutable after first use.
template <typename Fn>
Fn as_fn(void* symbol) {
  return reinterpret_cast<Fn>(symbol);
}

}  // namespace
}  // namespace bpsio::capture

namespace cap = bpsio::capture;

extern "C" {

int open(const char* path, int flags, ...) {
  static void* const real = dlsym(RTLD_NEXT, "open");
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0 || (flags & O_TMPFILE) == O_TMPFILE) {
    va_list args;
    va_start(args, flags);
    mode = va_arg(args, mode_t);
    va_end(args);
  }
  const auto fn = cap::as_fn<cap::OpenFn>(real);
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  const int fd = fn(path, flags, mode);
  const int saved_errno = errno;
  cap::note_open(fd);
  errno = saved_errno;
  return fd;
}

int open64(const char* path, int flags, ...) {
  static void* const real = dlsym(RTLD_NEXT, "open64");
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0 || (flags & O_TMPFILE) == O_TMPFILE) {
    va_list args;
    va_start(args, flags);
    mode = va_arg(args, mode_t);
    va_end(args);
  }
  const auto fn = cap::as_fn<cap::OpenFn>(real);
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  const int fd = fn(path, flags, mode);
  const int saved_errno = errno;
  cap::note_open(fd);
  errno = saved_errno;
  return fd;
}

int openat(int dirfd, const char* path, int flags, ...) {
  static void* const real = dlsym(RTLD_NEXT, "openat");
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0 || (flags & O_TMPFILE) == O_TMPFILE) {
    va_list args;
    va_start(args, flags);
    mode = va_arg(args, mode_t);
    va_end(args);
  }
  const auto fn = cap::as_fn<cap::OpenatFn>(real);
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  const int fd = fn(dirfd, path, flags, mode);
  const int saved_errno = errno;
  cap::note_open(fd);
  errno = saved_errno;
  return fd;
}

int openat64(int dirfd, const char* path, int flags, ...) {
  static void* const real = dlsym(RTLD_NEXT, "openat64");
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0 || (flags & O_TMPFILE) == O_TMPFILE) {
    va_list args;
    va_start(args, flags);
    mode = va_arg(args, mode_t);
    va_end(args);
  }
  const auto fn = cap::as_fn<cap::OpenatFn>(real);
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  const int fd = fn(dirfd, path, flags, mode);
  const int saved_errno = errno;
  cap::note_open(fd);
  errno = saved_errno;
  return fd;
}

int close(int fd) {
  static void* const real = dlsym(RTLD_NEXT, "close");
  const auto fn = cap::as_fn<cap::CloseFn>(real);
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  cap::note_close(fd);
  return fn(fd);
}

ssize_t read(int fd, void* buf, size_t count) {
  static void* const real = dlsym(RTLD_NEXT, "read");
  const auto fn = cap::as_fn<cap::ReadFn>(real);
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  if (count == 0 || !cap::should_record(fd)) return fn(fd, buf, count);
  const std::int64_t start = bpsio::monotonic_ns();
  const ssize_t ret = fn(fd, buf, count);
  const int saved_errno = errno;
  cap::record_io(bpsio::trace::IoOpKind::read, count, ret, start,
                 bpsio::monotonic_ns());
  errno = saved_errno;
  return ret;
}

ssize_t write(int fd, const void* buf, size_t count) {
  static void* const real = dlsym(RTLD_NEXT, "write");
  const auto fn = cap::as_fn<cap::WriteFn>(real);
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  if (count == 0 || !cap::should_record(fd)) return fn(fd, buf, count);
  const std::int64_t start = bpsio::monotonic_ns();
  const ssize_t ret = fn(fd, buf, count);
  const int saved_errno = errno;
  cap::record_io(bpsio::trace::IoOpKind::write, count, ret, start,
                 bpsio::monotonic_ns());
  errno = saved_errno;
  return ret;
}

ssize_t pread(int fd, void* buf, size_t count, off_t offset) {
  static void* const real = dlsym(RTLD_NEXT, "pread");
  const auto fn = cap::as_fn<cap::PreadFn>(real);
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  if (count == 0 || !cap::should_record(fd)) return fn(fd, buf, count, offset);
  const std::int64_t start = bpsio::monotonic_ns();
  const ssize_t ret = fn(fd, buf, count, offset);
  const int saved_errno = errno;
  cap::record_io(bpsio::trace::IoOpKind::read, count, ret, start,
                 bpsio::monotonic_ns());
  errno = saved_errno;
  return ret;
}

ssize_t pwrite(int fd, const void* buf, size_t count, off_t offset) {
  static void* const real = dlsym(RTLD_NEXT, "pwrite");
  const auto fn = cap::as_fn<cap::PwriteFn>(real);
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  if (count == 0 || !cap::should_record(fd)) return fn(fd, buf, count, offset);
  const std::int64_t start = bpsio::monotonic_ns();
  const ssize_t ret = fn(fd, buf, count, offset);
  const int saved_errno = errno;
  cap::record_io(bpsio::trace::IoOpKind::write, count, ret, start,
                 bpsio::monotonic_ns());
  errno = saved_errno;
  return ret;
}

ssize_t pread64(int fd, void* buf, size_t count, off64_t offset) {
  static void* const real = dlsym(RTLD_NEXT, "pread64");
  const auto fn = cap::as_fn<cap::Pread64Fn>(real);
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  if (count == 0 || !cap::should_record(fd)) return fn(fd, buf, count, offset);
  const std::int64_t start = bpsio::monotonic_ns();
  const ssize_t ret = fn(fd, buf, count, offset);
  const int saved_errno = errno;
  cap::record_io(bpsio::trace::IoOpKind::read, count, ret, start,
                 bpsio::monotonic_ns());
  errno = saved_errno;
  return ret;
}

ssize_t pwrite64(int fd, const void* buf, size_t count, off64_t offset) {
  static void* const real = dlsym(RTLD_NEXT, "pwrite64");
  const auto fn = cap::as_fn<cap::Pwrite64Fn>(real);
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  if (count == 0 || !cap::should_record(fd)) return fn(fd, buf, count, offset);
  const std::int64_t start = bpsio::monotonic_ns();
  const ssize_t ret = fn(fd, buf, count, offset);
  const int saved_errno = errno;
  cap::record_io(bpsio::trace::IoOpKind::write, count, ret, start,
                 bpsio::monotonic_ns());
  errno = saved_errno;
  return ret;
}

int fsync(int fd) {
  static void* const real = dlsym(RTLD_NEXT, "fsync");
  const auto fn = cap::as_fn<cap::FsyncFn>(real);
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  auto* runtime = cap::g_runtime.load(std::memory_order_acquire);
  const bool record = runtime != nullptr && runtime->cfg.record_fsync &&
                      cap::should_record(fd);
  if (!record) return fn(fd);
  const std::int64_t start = bpsio::monotonic_ns();
  const int ret = fn(fd);
  const int saved_errno = errno;
  cap::record_io(bpsio::trace::IoOpKind::write, 0, ret, start,
                 bpsio::monotonic_ns(), /*is_sync=*/true);
  errno = saved_errno;
  return ret;
}

int fdatasync(int fd) {
  static void* const real = dlsym(RTLD_NEXT, "fdatasync");
  const auto fn = cap::as_fn<cap::FsyncFn>(real);
  if (fn == nullptr) {
    errno = ENOSYS;
    return -1;
  }
  auto* runtime = cap::g_runtime.load(std::memory_order_acquire);
  const bool record = runtime != nullptr && runtime->cfg.record_fsync &&
                      cap::should_record(fd);
  if (!record) return fn(fd);
  const std::int64_t start = bpsio::monotonic_ns();
  const int ret = fn(fd);
  const int saved_errno = errno;
  cap::record_io(bpsio::trace::IoOpKind::write, 0, ret, start,
                 bpsio::monotonic_ns(), /*is_sync=*/true);
  errno = saved_errno;
  return ret;
}

}  // extern "C"
