// Discrete-event simulation core.
//
// Single-threaded, deterministic: events fire in (time, insertion-sequence)
// order, so two runs of the same configuration are bit-identical. All the
// I/O-stack layers (device, fs, pfs, mio) are callback-driven on top of this
// engine; simulated processes block on I/O by simply not scheduling their
// next step until the completion callback runs.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.hpp"

namespace bpsio::sim {

using EventFn = std::function<void()>;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  void schedule_at(SimTime t, EventFn fn);
  /// Schedule `fn` after `d` from now.
  void schedule_after(SimDuration d, EventFn fn);
  /// Schedule `fn` at the current time, after already-queued same-time events.
  void schedule_now(EventFn fn) { schedule_after(SimDuration::zero(), fn); }

  /// Run until the event queue drains. Returns the final simulation time.
  SimTime run();
  /// Run until simulated time reaches `deadline` (events at exactly
  /// `deadline` still fire) or the queue drains, whichever is first.
  SimTime run_until(SimTime deadline);

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Drop all pending events and reset the clock to zero.
  void reset();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tiebreak for same-time events
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void step();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
};

}  // namespace bpsio::sim
