#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bpsio::stats {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "n=%zu mean=%.6g sd=%.6g min=%.6g max=%.6g",
                n_, mean(), stddev(), min(), max());
  return buf;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double arithmetic_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double harmonic_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double inv_sum = 0.0;
  for (double v : values) {
    if (v == 0.0) return 0.0;
    inv_sum += 1.0 / v;
  }
  return static_cast<double>(values.size()) / inv_sum;
}

}  // namespace bpsio::stats
