#include "stats/inference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.hpp"

namespace bpsio::stats {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Regularized incomplete beta function I_x(a, b) via the standard continued
// fraction (modified Lentz), using the symmetry that keeps the fraction in
// its fast-converging region.
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

}  // namespace

double student_t_cdf(double t, double df) {
  BPSIO_CHECK(df > 0, "student_t_cdf needs df > 0");
  if (std::isnan(t)) return std::numeric_limits<double>::quiet_NaN();
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  // P(T <= t) = 1 - I_{df/(df+t^2)}(df/2, 1/2) / 2 for t >= 0.
  const double x = df / (df + t * t);
  const double tail = 0.5 * incomplete_beta(0.5 * df, 0.5, x);
  return t >= 0 ? 1.0 - tail : tail;
}

double student_t_quantile(double p, double df) {
  BPSIO_CHECK(df > 0, "student_t_quantile needs df > 0");
  BPSIO_CHECK(p > 0 && p < 1, "student_t_quantile needs p in (0,1)");
  if (p == 0.5) return 0.0;
  // Symmetric: solve for the upper half only.
  if (p < 0.5) return -student_t_quantile(1.0 - p, df);

  // Bracket [0, hi] by doubling, then bisect. The CDF is smooth and strictly
  // increasing; 80 bisections pin the root far below double precision of
  // any realistic critical value.
  double hi = 1.0;
  while (student_t_cdf(hi, df) < p && hi < 1e12) hi *= 2.0;
  double lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-12 * std::max(1.0, hi)) break;
  }
  return 0.5 * (lo + hi);
}

double lag1_autocorrelation(std::span<const double> x) {
  const std::size_t n = x.size();
  if (n < 3) return 0.0;
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(n);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - mean;
    den += d * d;
    if (i + 1 < n) num += d * (x[i + 1] - mean);
  }
  if (den <= 0.0) return 0.0;
  return num / den;
}

double effective_sample_size(std::size_t n, double lag1) {
  if (n == 0) return 0.0;
  const double r = std::clamp(lag1, 0.0, 0.99);
  const double ess = static_cast<double>(n) * (1.0 - r) / (1.0 + r);
  return std::clamp(ess, std::min(2.0, static_cast<double>(n)),
                    static_cast<double>(n));
}

double Estimate::rel_half_width() const {
  if (count < 2 || mean == 0.0) return kInf;
  return ci_half_width / std::fabs(mean);
}

Estimate estimate(std::span<const double> x, double confidence) {
  BPSIO_CHECK(confidence > 0 && confidence < 1,
              "confidence must be in (0,1)");
  Estimate est;
  est.count = x.size();
  est.confidence = confidence;
  if (x.empty()) {
    est.ci_lo = -kInf;
    est.ci_hi = kInf;
    est.ci_half_width = kInf;
    return est;
  }
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  est.mean = mean;
  if (x.size() < 2) {
    est.ci_lo = -kInf;
    est.ci_hi = kInf;
    est.ci_half_width = kInf;
    return est;
  }
  double m2 = 0.0;
  for (const double v : x) m2 += (v - mean) * (v - mean);
  est.stddev = std::sqrt(m2 / static_cast<double>(x.size() - 1));
  est.lag1 = lag1_autocorrelation(x);
  est.ess = effective_sample_size(x.size(), est.lag1);
  const double q = 1.0 - (1.0 - confidence) / 2.0;
  const double tcrit = student_t_quantile(q, est.ess - 1.0);
  est.ci_half_width = tcrit * est.stddev / std::sqrt(est.ess);
  est.ci_lo = mean - est.ci_half_width;
  est.ci_hi = mean + est.ci_half_width;
  return est;
}

std::size_t detect_warmup(std::span<const double> x, double max_fraction) {
  const std::size_t n = x.size();
  if (n < 8) return 0;
  const auto max_cut = static_cast<std::size_t>(
      std::floor(static_cast<double>(n) * std::clamp(max_fraction, 0.0, 0.9)));
  if (max_cut < 1) return 0;

  // Prefix sums of x and x^2 make every split's two-segment SSE O(1).
  std::vector<double> sum(n + 1, 0.0);
  std::vector<double> sumsq(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    sum[i + 1] = sum[i] + x[i];
    sumsq[i + 1] = sumsq[i] + x[i] * x[i];
  }
  const auto segment_sse = [&](std::size_t lo, std::size_t hi) {
    // SSE of x[lo, hi) around its own mean.
    const double cnt = static_cast<double>(hi - lo);
    const double s = sum[hi] - sum[lo];
    const double sq = sumsq[hi] - sumsq[lo];
    return std::max(0.0, sq - s * s / cnt);
  };
  const double sse_total = segment_sse(0, n);
  if (sse_total <= 0.0) return 0;  // constant series: nothing to trim

  std::size_t best_k = 0;
  double best_split = sse_total;
  for (std::size_t k = 1; k <= max_cut; ++k) {
    const double split = segment_sse(0, k) + segment_sse(k, n);
    if (split < best_split) {
      best_split = split;
      best_k = k;
    }
  }
  // Fraction of the total variation the two-mean model explains. A genuine
  // warm-up step dominates the series' SSE; noise alone cannot.
  const double explained = 1.0 - best_split / sse_total;
  constexpr double kExplainedThreshold = 0.25;
  return explained >= kExplainedThreshold ? best_k : 0;
}

WelchResult welch_t_test(double mean_a, double var_a, double n_a,
                         double mean_b, double var_b, double n_b) {
  WelchResult r;
  if (n_a < 2 || n_b < 2) {
    // Too little data to test anything: report "no evidence".
    r.p_two_sided = 1.0;
    return r;
  }
  const double se_a = var_a / n_a;
  const double se_b = var_b / n_b;
  const double se2 = se_a + se_b;
  if (se2 <= 0.0) {
    // Both samples exactly constant: equal means are indistinguishable,
    // different means are unambiguously different.
    r.t = mean_a == mean_b ? 0.0 : (mean_b > mean_a ? kInf : -kInf);
    r.df = n_a + n_b - 2.0;
    r.p_two_sided = mean_a == mean_b ? 1.0 : 0.0;
    return r;
  }
  r.t = (mean_b - mean_a) / std::sqrt(se2);
  r.df = se2 * se2 /
         (se_a * se_a / (n_a - 1.0) + se_b * se_b / (n_b - 1.0));
  r.p_two_sided = 2.0 * (1.0 - student_t_cdf(std::fabs(r.t), r.df));
  r.p_two_sided = std::clamp(r.p_two_sided, 0.0, 1.0);
  return r;
}

}  // namespace bpsio::stats
