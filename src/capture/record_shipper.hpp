// Per-thread record transport: live socket shipping with automatic file
// spill fallback — the transport abstraction behind the interposer's flush
// path.
//
// Each capturing thread owns exactly one RecordShipper (no locks, no shared
// state beyond process-wide warn-once flags). The backend is decided at the
// first flush:
//
//   BPSIO_CAPTURE_SOCKET set  -> connect to the bpsio_agentd Unix socket and
//                                ship each buffer as one length-prefixed
//                                frame (trace/frame.hpp).
//   socket unreachable/lost   -> fall back to a per-thread .bpstrace spill
//                                file in BPSIO_CAPTURE_DIR (one stderr
//                                warning per process). The buffer whose send
//                                failed is re-shipped to the spill file: the
//                                daemon only counts fully-received frames,
//                                so a failed send means "not delivered" —
//                                no record is lost or double-counted.
//   no socket configured      -> spill directly (the PR-4 path).
//   neither available         -> records drop with one warning; the host
//                                process is never aborted (ground rule of
//                                src/capture/interpose.cpp).
//
// This code runs inside other people's processes under the interposer's
// reentrancy guard: it must never throw, never exit, and its own socket and
// file I/O must stay out of the trace (the guard handles that; the fds used
// here are additionally never marked as tracked application fds).
#pragma once

#include <cstdint>
#include <vector>

#include "capture/capture_config.hpp"
#include "trace/io_record.hpp"

namespace bpsio::trace {
class SpillWriter;  // spill_writer.hpp
}

namespace bpsio::capture {

class RecordShipper {
 public:
  enum class Backend {
    unopened,  ///< no flush yet; transport chosen lazily
    socket,    ///< live frames to bpsio_agentd
    spill,     ///< per-thread .bpstrace file
    dead,      ///< no transport available; records drop
  };

  /// `config` must outlive the shipper (the interposer's runtime config is
  /// immutable after init). pid/tid name the spill file if one is needed.
  RecordShipper(const CaptureConfig& config, std::uint32_t pid,
                std::uint32_t tid);
  ~RecordShipper();

  RecordShipper(const RecordShipper&) = delete;
  RecordShipper& operator=(const RecordShipper&) = delete;

  /// Ship one flushed buffer. Returns false once the shipper is dead (no
  /// transport left) — the caller should stop buffering.
  bool ship(const std::vector<trace::IoRecord>& records);

  /// Flush/close the active transport (socket gets an orderly shutdown so
  /// the daemon sees EOF; spill writer checkpoints and closes). Idempotent.
  void close();

  /// Fork child: drop inherited transports without closing them on the
  /// parent's behalf. The child's socket fd reference is closed (the
  /// parent's connection is unaffected); an inherited spill writer is
  /// abandoned un-closed because its file offset belongs to the parent.
  void abandon_after_fork();

  Backend backend() const { return backend_; }

 private:
  bool ensure_backend();
  bool try_connect();
  bool open_spill();
  bool spill(const std::vector<trace::IoRecord>& records);
  bool send_frame(const std::vector<trace::IoRecord>& records);
  void die(const char* what);

  const CaptureConfig* config_;
  std::uint32_t pid_;
  std::uint32_t tid_;
  Backend backend_ = Backend::unopened;
  int socket_fd_ = -1;
  trace::SpillWriter* writer_ = nullptr;
  std::vector<char> frame_buf_;
};

}  // namespace bpsio::capture
