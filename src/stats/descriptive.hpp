// Streaming descriptive statistics (Welford) and fixed-sample summaries.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace bpsio::stats {

/// Single-pass running mean/variance/min/max accumulator (Welford's method,
/// numerically stable for long streams of latencies).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  std::string to_string() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `p` in [0, 100]. Returns 0 for an empty sample.
double percentile(std::vector<double> values, double p);

/// Arithmetic / geometric / harmonic means of a sample.
double arithmetic_mean(const std::vector<double>& values);
double geometric_mean(const std::vector<double>& values);
double harmonic_mean(const std::vector<double>& values);

}  // namespace bpsio::stats
