// bpsio-analyze: whole-program static analyzer for the capture hot path and
// the lock discipline. Where bpsio_lint judges single lines, this tool
// extracts function definitions and call sites across src/ + tools/ from the
// same comment/string-stripped token substrate (tools/source_model.hpp),
// builds a call graph, and runs three transitive checks:
//
//   interposer-unsafe   Every function reachable from the extern "C" entry
//                       points in src/capture/interpose.cpp (open/openat/
//                       close/read/write/pread(64)/pwrite(64)/fsync/
//                       fdatasync) must not reach a deny list of
//                       hot-path-unsafe operations — allocation (malloc/new),
//                       std::string/std::vector growth, stdio/iostream,
//                       locks (MutexLock, .lock(), lock_guard, ...), dlopen,
//                       abort/exit, BPSIO_CHECK — unless the call sits after
//                       a ReentrancyGuard in scope (bookkeeping that the
//                       wrappers themselves drop) or carries an explicit
//                       allow. Findings print the full call chain from the
//                       entry point to the unsafe call.
//   errno-preservation  Each interposed entry point that runs capture
//                       bookkeeping after the real call must save errno into
//                       a local and restore it before returning, so the host
//                       application only ever observes the real syscall's
//                       errno. (Bookkeeping that completes before the real
//                       call — close()'s note_close — needs no protection.)
//   lock-cycle          A static lock-order graph built from MutexLock
//                       nesting across function boundaries: an edge A -> B
//                       means B was acquired while A was held, transitively
//                       through calls. Any cycle is a potential deadlock.
//                       (src/common/mutex.hpp carries the matching runtime
//                       detector for Debug/sanitizer builds.)
//
// Suppression: `// bpsio-analyze: allow(check, ...)` on the offending line
// or on a comment-only line directly above. For interposer-unsafe, an allow
// on a call also vouches for the callee — traversal stops there.
//
// Model limits (deliberate, documented in docs/STATIC_ANALYSIS.md): calls
// resolve by simple name (same-file definitions preferred), so overload sets
// and virtual dispatch are over-approximated; operator overloads and macro
// bodies are not functions; template calls through an explicit argument list
// (`as_fn<Fn>(x)`) are invisible. The deny list is checked before
// resolution, so a project function shadowing a deny name still counts as
// unsafe. dlsym is intentionally NOT denied: the wrappers' one-time
// `static void* const real = dlsym(...)` resolution is part of the design.
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "cli.hpp"
#include "source_model.hpp"

namespace {

using bpsio::srcmodel::SourceFile;
using bpsio::srcmodel::collect_files;
using bpsio::srcmodel::is_allowed;
using bpsio::srcmodel::path_contains;

constexpr const char* kAllowTag = "bpsio-analyze";

struct Finding {
  std::string file;
  std::size_t line = 0;  // 0-based
  std::string check;
  std::string detail;
};

// ---------------------------------------------------------------------------
// Tokenization
// ---------------------------------------------------------------------------

struct Tok {
  bool ident = false;
  std::string text;
  std::size_t line = 0;  // 0-based
};

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "alignas",      "alignof",  "auto",       "bool",
      "break",        "case",     "catch",      "char",
      "class",        "co_await", "co_return",  "co_yield",
      "concept",      "const",    "const_cast", "consteval",
      "constexpr",    "constinit","continue",   "decltype",
      "default",      "delete",   "do",         "double",
      "dynamic_cast", "else",     "enum",       "explicit",
      "extern",       "false",    "float",      "for",
      "friend",       "goto",     "if",         "inline",
      "int",          "long",     "mutable",    "namespace",
      "new",          "noexcept", "nullptr",    "operator",
      "private",      "protected","public",     "register",
      "reinterpret_cast", "requires", "return", "short",
      "signed",       "sizeof",   "static",     "static_assert",
      "static_cast",  "struct",   "switch",     "template",
      "this",         "thread_local", "throw",  "true",
      "try",          "typedef",  "typeid",     "typename",
      "union",        "unsigned", "using",      "virtual",
      "void",         "volatile", "while",
  };
  return kKeywords.count(s) != 0;
}

std::vector<Tok> tokenize(const SourceFile& src) {
  std::vector<Tok> toks;
  for (std::size_t line = 0; line < src.code.size(); ++line) {
    const std::string& code = src.code[line];
    for (std::size_t i = 0; i < code.size();) {
      const char c = code[i];
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      if (bpsio::srcmodel::ident_char(c)) {
        std::size_t j = i + 1;
        while (j < code.size() && bpsio::srcmodel::ident_char(code[j])) ++j;
        toks.push_back(Tok{true, code.substr(i, j - i), line});
        i = j;
        continue;
      }
      if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
        toks.push_back(Tok{false, "::", line});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
        toks.push_back(Tok{false, "->", line});
        i += 2;
        continue;
      }
      toks.push_back(Tok{false, std::string(1, c), line});
      ++i;
    }
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Function extraction
// ---------------------------------------------------------------------------

struct CallSite {
  std::string name;
  std::size_t line = 0;
  bool guarded = false;           ///< after a ReentrancyGuard in scope
  std::vector<std::string> held;  ///< lock ids held at the call
};

struct LockAcq {
  std::string lock;  ///< normalized id, e.g. "ThreadPool::mu" or "g_sink_mu"
  std::size_t line = 0;
  bool guarded = false;
  std::vector<std::string> held;  ///< locks already held when acquired
};

struct Function {
  std::string name;  ///< simple name ("append")
  std::string cls;   ///< enclosing class if any ("ThreadCapture")
  std::string file;
  std::size_t line = 0;  ///< 0-based definition line
  std::vector<CallSite> calls;
  std::vector<LockAcq> locks;
  bool has_errno_save = false;
  bool has_errno_restore = false;
};

class Parser {
 public:
  Parser(const SourceFile& src, std::deque<Function>& out)
      : src_(src), toks_(tokenize(src)), out_(out) {}

  void run() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Tok& t = toks_[i];
      if (!t.ident) {
        if (t.text == "{") {
          open_brace();
        } else if (t.text == "}") {
          close_brace();
        } else if (t.text == ";") {
          clear_pending();
        } else if (t.text == "(") {
          if (const auto jump = handle_paren(i)) i = *jump;
        }
        continue;
      }
      handle_ident(i);
    }
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kFunction, kBlock } kind = kBlock;
    std::string name;                     // class name
    std::size_t func = SIZE_MAX;          // index into out_
    bool guard = false;                   // ReentrancyGuard constructed here
    std::vector<std::string> locks;       // MutexLock acquired in this scope
  };

  void clear_pending() {
    pending_aggregate_.clear();
    pending_is_aggregate_ = false;
    pending_is_namespace_ = false;
    pending_bases_ = false;
  }

  void open_brace() {
    if (pending_is_namespace_) {
      scopes_.push_back(Scope{Scope::kNamespace, "", SIZE_MAX, false, {}});
    } else if (pending_is_aggregate_) {
      scopes_.push_back(
          Scope{Scope::kClass, pending_aggregate_, SIZE_MAX, false, {}});
    } else {
      scopes_.push_back(Scope{Scope::kBlock, "", SIZE_MAX, false, {}});
    }
    clear_pending();
  }

  void close_brace() {
    if (!scopes_.empty()) scopes_.pop_back();
  }

  bool in_function() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return true;
    }
    return false;
  }

  Function* current_function() {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return &out_[it->func];
    }
    return nullptr;
  }

  std::string current_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  }

  bool any_guard() const {
    for (const Scope& s : scopes_) {
      if (s.guard) return true;
    }
    return false;
  }

  std::vector<std::string> held_locks() const {
    std::vector<std::string> held;
    for (const Scope& s : scopes_) {
      held.insert(held.end(), s.locks.begin(), s.locks.end());
    }
    return held;
  }

  const Tok* at(std::size_t i) const {
    return i < toks_.size() ? &toks_[i] : nullptr;
  }

  bool next_is(std::size_t i, const char* text) const {
    const Tok* t = at(i + 1);
    return t != nullptr && !t->ident && t->text == text;
  }

  /// Index just past the group that balances the opener at `i` ('(' or '{'),
  /// or nullopt if unbalanced.
  std::optional<std::size_t> skip_group(std::size_t i) const {
    const std::string open = toks_[i].text;
    const std::string close = open == "(" ? ")" : "}";
    int depth = 0;
    for (std::size_t j = i; j < toks_.size(); ++j) {
      if (toks_[j].ident) continue;
      if (toks_[j].text == open) ++depth;
      if (toks_[j].text == close && --depth == 0) return j + 1;
    }
    return std::nullopt;
  }

  void handle_ident(std::size_t i) {
    const Tok& t = toks_[i];
    if (t.text == "namespace") {
      pending_is_namespace_ = true;
      return;
    }
    if (t.text == "struct" || t.text == "class" || t.text == "union" ||
        t.text == "enum") {
      pending_is_aggregate_ = true;
      pending_bases_ = false;
      return;
    }
    if (pending_is_aggregate_ && !pending_bases_ && !is_keyword(t.text)) {
      // `class BPSIO_CAPABILITY("mutex") Mutex : Base {` — attribute macros
      // are skipped (with their parens), base names after ':' never
      // override, and the LAST plain identifier before ':' or '{' wins.
      if (next_is(i, "(")) return;  // the paren handler skips macro args
      if (i > 0 && !toks_[i - 1].ident && toks_[i - 1].text == ":") {
        pending_bases_ = true;
        return;
      }
      pending_aggregate_ = t.text;
      return;
    }
    if (!in_function()) return;
    Function* fn = current_function();
    if (t.text == "ReentrancyGuard") {
      scopes_.back().guard = true;
      return;
    }
    if (t.text == "MutexLock") {
      handle_mutex_lock(i, fn);
      return;
    }
    if (t.text == "new" || t.text == "delete" || t.text == "throw") {
      fn->calls.push_back(CallSite{t.text, t.line, any_guard(), held_locks()});
      return;
    }
    if (t.text == "cout" || t.text == "cerr" || t.text == "clog") {
      fn->calls.push_back(CallSite{t.text, t.line, any_guard(), held_locks()});
      return;
    }
    if (t.text == "errno") {
      // save:    `saved = errno`  (and not `x == errno` / `x != errno`)
      // restore: `errno = saved`  (and not `errno == x`)
      const Tok* p1 = i >= 1 ? at(i - 1) : nullptr;
      const Tok* p2 = i >= 2 ? at(i - 2) : nullptr;
      if (p1 && !p1->ident && p1->text == "=" && p2 && p2->ident &&
          !is_keyword(p2->text)) {
        fn->has_errno_save = true;
      }
      const Tok* n1 = at(i + 1);
      const Tok* n2 = at(i + 2);
      if (n1 && !n1->ident && n1->text == "=" &&
          !(n2 && !n2->ident && n2->text == "=")) {
        fn->has_errno_restore = true;
      }
      return;
    }
  }

  /// `MutexLock ident ( lock-expr )` — record the acquisition with the
  /// current held set and push the lock onto the innermost scope.
  void handle_mutex_lock(std::size_t i, Function* fn) {
    const Tok* var = at(i + 1);
    if (var == nullptr || !var->ident || !next_is(i + 1, "(")) return;
    const std::size_t open = i + 2;
    const auto past = skip_group(open);
    if (!past) return;
    std::string expr;
    for (std::size_t j = open + 1; j + 1 < *past; ++j) expr += toks_[j].text;
    if (expr.empty()) return;
    std::string id = expr;
    // Member locks get the enclosing class as a namespace so `mu_` in two
    // classes stays two distinct locks; globals (file-scope names) are
    // already unique enough within the repo's flat naming.
    if (!fn->cls.empty() && expr.find("::") == std::string::npos) {
      id = fn->cls + "::" + expr;
    }
    fn->locks.push_back(LockAcq{id, toks_[i].line, any_guard(), held_locks()});
    scopes_.back().locks.push_back(id);
  }

  /// '(' at index `i`: inside a function this records a call site; at file/
  /// class scope it may begin a function definition (returns the index of
  /// the body '{' to jump to, with the function scope already pushed).
  std::optional<std::size_t> handle_paren(std::size_t i) {
    const Tok* name = i >= 1 ? at(i - 1) : nullptr;
    if (name == nullptr || !name->ident || is_keyword(name->text)) {
      return std::nullopt;
    }
    if (std::isdigit(static_cast<unsigned char>(name->text[0]))) {
      return std::nullopt;
    }
    const Tok* before = i >= 2 ? at(i - 2) : nullptr;
    if (in_function()) {
      // Local declarations (`MutexLock lock(mu)`, `std::string s(x)`) have a
      // type token directly before the name; calls have punctuation or a
      // keyword (`return f(x)`).
      const bool decl =
          before != nullptr &&
          ((before->ident && !is_keyword(before->text)) ||
           (!before->ident &&
            (before->text == ">" || before->text == "*" || before->text == "&")));
      if (!decl) {
        current_function()->calls.push_back(
            CallSite{name->text, name->line, any_guard(), held_locks()});
      }
      return std::nullopt;
    }
    // Candidate definition. Member-access can't start one.
    if (before != nullptr && !before->ident &&
        (before->text == "." || before->text == "->")) {
      return std::nullopt;
    }
    return try_definition(i, *name);
  }

  std::optional<std::size_t> try_definition(std::size_t open,
                                            const Tok& name_tok) {
    // Gather `A::B::name` qualifiers and a possible '~' (destructor).
    std::string name = name_tok.text;
    std::string cls;
    {
      std::size_t j = open - 1;  // name index
      while (j >= 2 && !toks_[j - 1].ident && toks_[j - 1].text == "::" &&
             toks_[j - 2].ident) {
        cls = toks_[j - 2].text;  // innermost qualifier wins
        j -= 2;
      }
      if (j >= 1 && !toks_[j - 1].ident && toks_[j - 1].text == "~") {
        name = "~" + name;
      }
      // Only keep the qualifier nearest the name: A::B::f → cls B.
      if (!cls.empty()) {
        std::size_t k = open - 1;
        if (k >= 2 && toks_[k - 1].text == "::" && toks_[k - 2].ident) {
          cls = toks_[k - 2].text;
        }
      }
    }
    const auto params_end = skip_group(open);
    if (!params_end) return std::nullopt;

    // Walk the trailer (const/noexcept/override, attribute macros with
    // balanced parens, `-> type`, ctor-init list) to the body '{'. A ';' or
    // '=' means declaration; anything unexpected means "not a definition".
    std::size_t pos = *params_end;
    bool in_init_list = false;
    for (int steps = 0; steps < 4096 && pos < toks_.size(); ++steps) {
      const Tok& t = toks_[pos];
      if (t.ident) {
        if (next_is(pos, "(")) {
          const auto past = skip_group(pos + 1);
          if (!past) return std::nullopt;
          pos = *past;
        } else {
          ++pos;
        }
        continue;
      }
      if (t.text == "{") {
        // In a ctor-init list, `x_{0}` directly after an identifier or a
        // template '>' is an initializer brace, not the body.
        const Tok& prev = toks_[pos - 1];
        if (in_init_list && (prev.ident || prev.text == ">")) {
          const auto past = skip_group(pos);
          if (!past) return std::nullopt;
          pos = *past;
          continue;
        }
        return begin_function(std::move(name), std::move(cls), name_tok.line,
                              pos);
      }
      if (t.text == ";" || t.text == "=") return std::nullopt;
      if (t.text == ":") {
        in_init_list = true;
        ++pos;
        continue;
      }
      if (t.text == "<" || t.text == ">" || t.text == "*" || t.text == "&" ||
          t.text == "::" || t.text == "," || t.text == "->" ||
          t.text == "[" || t.text == "]") {
        ++pos;
        continue;
      }
      return std::nullopt;  // '+', '#', '\\', quotes, a second '(' — not a def
    }
    return std::nullopt;
  }

  std::optional<std::size_t> begin_function(std::string name, std::string cls,
                                            std::size_t line,
                                            std::size_t body_open) {
    if (cls.empty()) cls = current_class();
    out_.push_back(Function{std::move(name), std::move(cls), src_.path, line,
                            {}, {}, false, false});
    scopes_.push_back(
        Scope{Scope::kFunction, "", out_.size() - 1, false, {}});
    clear_pending();
    return body_open;  // the main loop resumes after the body '{'
  }

  const SourceFile& src_;
  std::vector<Tok> toks_;
  std::deque<Function>& out_;
  std::vector<Scope> scopes_;
  std::string pending_aggregate_;
  bool pending_is_aggregate_ = false;
  bool pending_is_namespace_ = false;
  bool pending_bases_ = false;
};

// ---------------------------------------------------------------------------
// Program model: all files, all functions, name index
// ---------------------------------------------------------------------------

struct Program {
  std::vector<SourceFile> files;
  std::map<std::string, const SourceFile*> by_path;
  std::deque<Function> functions;
  std::map<std::string, std::vector<const Function*>> by_name;

  void build() {
    for (const SourceFile& src : files) {
      by_path[src.path] = &src;
      Parser(src, functions).run();
    }
    for (const Function& f : functions) by_name[f.name].push_back(&f);
  }

  /// Same-file definitions win; otherwise every definition of the simple
  /// name is a candidate (over-approximation, by design).
  std::vector<const Function*> resolve(const std::string& name,
                                       const std::string& from_file) const {
    const auto it = by_name.find(name);
    if (it == by_name.end()) return {};
    std::vector<const Function*> same_file;
    for (const Function* f : it->second) {
      if (f->file == from_file) same_file.push_back(f);
    }
    return same_file.empty() ? it->second : same_file;
  }

  bool allowed(const std::string& file, std::size_t line,
               const std::string& check) const {
    const auto it = by_path.find(file);
    return it != by_path.end() && is_allowed(*it->second, line, check);
  }
};

// ---------------------------------------------------------------------------
// Check 1: interposer-safety
// ---------------------------------------------------------------------------

const std::set<std::string>& entry_point_names() {
  static const std::set<std::string> kEntries = {
      "open",  "open64",  "openat",  "openat64", "close",
      "read",  "write",   "pread",   "pwrite",   "pread64",
      "pwrite64", "fsync", "fdatasync",
  };
  return kEntries;
}

bool is_entry_point(const Function& f) {
  return f.cls.empty() && entry_point_names().count(f.name) != 0 &&
         path_contains(f.file, "capture/interpose");
}

/// Operations a wrapper must never reach outside the reentrancy guard.
/// Checked before call resolution: a project function shadowing one of
/// these names is still a finding. dlsym is deliberately absent (the
/// one-time trampoline resolution); `append`/`assign` are absent because
/// they collide with the project's own buffer/writer methods — vector and
/// string growth is caught through push_back/reserve/resize instead.
const std::set<std::string>& deny_list() {
  static const std::set<std::string> kDeny = {
      // allocation
      "malloc", "calloc", "realloc", "free", "strdup", "strndup",
      "aligned_alloc", "posix_memalign", "new", "delete",
      // container/string growth and formatting
      "push_back", "emplace_back", "reserve", "resize", "insert", "emplace",
      "shrink_to_fit", "to_string", "substr", "string", "getline",
      // stdio / iostream
      "printf", "fprintf", "vfprintf", "vprintf", "sprintf", "vsprintf",
      "snprintf", "vsnprintf", "puts", "fputs", "fputc", "fwrite", "fread",
      "fopen", "fclose", "fflush", "perror", "cout", "cerr", "clog",
      "ostringstream", "stringstream", "ofstream", "ifstream",
      // blocking synchronization
      "lock", "try_lock", "lock_guard", "unique_lock", "scoped_lock",
      "pthread_mutex_lock", "sem_wait", "wait",
      // dynamic loading, process control, contract aborts
      "dlopen", "dlclose", "abort", "exit", "_exit", "_Exit", "quick_exit",
      "terminate", "throw", "BPSIO_CHECK", "BPSIO_DCHECK",
  };
  return kDeny;
}

struct ChainStep {
  const Function* fn = nullptr;
  int parent = -1;               // index into the steps vector
  std::string call_file;         // where the parent called fn
  std::size_t call_line = 0;
};

std::string location(const std::string& file, std::size_t line) {
  return file + ":" + std::to_string(line + 1);
}

std::string chain_string(const std::vector<ChainStep>& steps, int leaf,
                         const std::string& unsafe_name,
                         const std::string& unsafe_file,
                         std::size_t unsafe_line) {
  std::vector<std::string> parts;
  for (int at = leaf; at >= 0; at = steps[static_cast<std::size_t>(at)].parent) {
    const ChainStep& s = steps[static_cast<std::size_t>(at)];
    const std::string where = s.parent < 0
                                  ? location(s.fn->file, s.fn->line)
                                  : location(s.call_file, s.call_line);
    parts.insert(parts.begin(), s.fn->name + " (" + where + ")");
  }
  parts.push_back(unsafe_name + " (" + location(unsafe_file, unsafe_line) +
                  ")");
  std::string chain;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) chain += " -> ";
    chain += parts[i];
  }
  return chain;
}

void check_interposer_safety(const Program& prog,
                             std::vector<Finding>& findings) {
  // Deterministic entry order: functions are parsed in sorted-file order, so
  // a plain scan finds entries in a stable order.
  std::vector<const Function*> entries;
  for (const Function& f : prog.functions) {
    if (is_entry_point(f)) entries.push_back(&f);
  }
  std::set<const Function*> visited;
  std::vector<ChainStep> steps;
  std::deque<int> queue;
  for (const Function* e : entries) {
    if (visited.insert(e).second) {
      steps.push_back(ChainStep{e, -1, "", 0});
      queue.push_back(static_cast<int>(steps.size()) - 1);
    }
  }
  while (!queue.empty()) {
    const int at = queue.front();
    queue.pop_front();
    const Function* fn = steps[static_cast<std::size_t>(at)].fn;
    const Function* entry = fn;
    for (int p = at; p >= 0; p = steps[static_cast<std::size_t>(p)].parent) {
      entry = steps[static_cast<std::size_t>(p)].fn;
    }
    for (const LockAcq& acq : fn->locks) {
      if (acq.guarded) continue;
      if (prog.allowed(fn->file, acq.line, "interposer-unsafe")) continue;
      findings.push_back(Finding{
          fn->file, acq.line, "interposer-unsafe",
          "MutexLock acquired on the capture hot path (reachable from "
          "interposed '" +
              entry->name + "'): " +
              chain_string(steps, at, "MutexLock", fn->file, acq.line) +
              " — the wrappers must stay lock-free"});
    }
    for (const CallSite& call : fn->calls) {
      if (call.guarded) continue;
      if (prog.allowed(fn->file, call.line, "interposer-unsafe")) continue;
      if (deny_list().count(call.name) != 0) {
        findings.push_back(Finding{
            fn->file, call.line, "interposer-unsafe",
            "hot-path-unsafe call '" + call.name +
                "' reachable from interposed '" + entry->name +
                "': " +
                chain_string(steps, at, call.name, fn->file, call.line) +
                " — move it behind the ReentrancyGuard or annotate "
                "// bpsio-analyze: allow(interposer-unsafe)"});
        continue;
      }
      for (const Function* callee : prog.resolve(call.name, fn->file)) {
        if (visited.insert(callee).second) {
          steps.push_back(ChainStep{callee, at, fn->file, call.line});
          queue.push_back(static_cast<int>(steps.size()) - 1);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 2: errno-preservation
// ---------------------------------------------------------------------------

void check_errno_preservation(const Program& prog,
                              std::vector<Finding>& findings) {
  static const std::set<std::string> kBookkeeping = {"record_io", "note_open",
                                                     "note_close"};
  for (const Function& f : prog.functions) {
    if (!is_entry_point(f)) continue;
    // The real call happens through the `fn` trampoline; bookkeeping that
    // runs after the LAST trampoline call can clobber the errno the host is
    // about to read. Bookkeeping fully before the real call (close()'s
    // note_close) is exempt.
    std::ptrdiff_t last_fn = -1;
    for (std::size_t i = 0; i < f.calls.size(); ++i) {
      if (f.calls[i].name == "fn") last_fn = static_cast<std::ptrdiff_t>(i);
    }
    bool needs_protection = false;
    for (std::size_t i = 0; i < f.calls.size(); ++i) {
      if (kBookkeeping.count(f.calls[i].name) != 0 &&
          static_cast<std::ptrdiff_t>(i) > last_fn) {
        needs_protection = true;
      }
    }
    if (!needs_protection) continue;
    if (f.has_errno_save && f.has_errno_restore) continue;
    if (prog.allowed(f.file, f.line, "errno-preservation")) continue;
    findings.push_back(Finding{
        f.file, f.line, "errno-preservation",
        "interposed '" + f.name +
            "' runs capture bookkeeping after the real call without a "
            "save/restore of errno (`const int saved_errno = errno;` ... "
            "`errno = saved_errno;`) — the host must only ever observe the "
            "real syscall's errno"});
  }
}

// ---------------------------------------------------------------------------
// Check 3: lock-discipline (static lock-order graph, cycle = deadlock risk)
// ---------------------------------------------------------------------------

struct LockEdge {
  std::string file;
  std::size_t line = 0;
  std::string via;  // function whose body contributed the edge
};

class LockGraph {
 public:
  explicit LockGraph(const Program& prog) : prog_(prog) {}

  void build() {
    for (const Function& f : prog_.functions) {
      for (const LockAcq& acq : f.locks) {
        if (prog_.allowed(f.file, acq.line, "lock-cycle")) continue;
        for (const std::string& held : acq.held) {
          if (held != acq.lock) {
            add_edge(held, acq.lock, f.file, acq.line, f.name);
          }
        }
      }
      for (const CallSite& call : f.calls) {
        if (call.held.empty()) continue;
        if (prog_.allowed(f.file, call.line, "lock-cycle")) continue;
        for (const Function* callee : prog_.resolve(call.name, f.file)) {
          for (const std::string& acquired : acquired_set(callee)) {
            for (const std::string& held : call.held) {
              if (held != acquired) {
                add_edge(held, acquired, f.file, call.line, f.name);
              }
            }
          }
        }
      }
    }
  }

  void report_cycles(std::vector<Finding>& findings) {
    std::set<std::string> seen_cycles;
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::vector<std::string> stack;
    for (const auto& [node, _] : edges_) {
      if (color[node] == 0) dfs(node, color, stack, seen_cycles, findings);
    }
  }

 private:
  /// Locks acquired in `f` or transitively in anything it calls.
  /// Memoized; recursion through the (cyclic) call graph yields the partial
  /// set computed so far, which is exactly the fixed-point-safe answer.
  const std::set<std::string>& acquired_set(const Function* f) {
    const auto it = acquired_.find(f);
    if (it != acquired_.end()) return it->second;
    auto& set = acquired_[f];  // inserted empty first: recursion terminator
    for (const LockAcq& acq : f->locks) {
      if (!prog_.allowed(f->file, acq.line, "lock-cycle")) set.insert(acq.lock);
    }
    for (const CallSite& call : f->calls) {
      for (const Function* callee : prog_.resolve(call.name, f->file)) {
        if (callee == f) continue;
        const std::set<std::string> sub = acquired_set(callee);
        set.insert(sub.begin(), sub.end());
      }
    }
    return set;
  }

  void add_edge(const std::string& from, const std::string& to,
                const std::string& file, std::size_t line,
                const std::string& via) {
    auto& slot = edges_[from];
    if (slot.find(to) == slot.end()) slot[to] = LockEdge{file, line, via};
    edges_[to];  // ensure the target node exists for the DFS
  }

  void dfs(const std::string& node, std::map<std::string, int>& color,
           std::vector<std::string>& stack, std::set<std::string>& seen,
           std::vector<Finding>& findings) {
    color[node] = 1;
    stack.push_back(node);
    for (const auto& [next, edge] : edges_[node]) {
      if (color[next] == 1) {
        report_cycle(next, stack, seen, findings);
      } else if (color[next] == 0) {
        dfs(next, color, stack, seen, findings);
      }
    }
    stack.pop_back();
    color[node] = 2;
  }

  void report_cycle(const std::string& back_to,
                    std::vector<std::string>& stack,
                    std::set<std::string>& seen,
                    std::vector<Finding>& findings) {
    std::vector<std::string> cycle;
    bool collecting = false;
    for (const std::string& n : stack) {
      if (n == back_to) collecting = true;
      if (collecting) cycle.push_back(n);
    }
    if (cycle.empty()) return;
    // Canonical rotation so each cycle reports once.
    std::size_t min_at = 0;
    for (std::size_t i = 1; i < cycle.size(); ++i) {
      if (cycle[i] < cycle[min_at]) min_at = i;
    }
    std::rotate(cycle.begin(),
                cycle.begin() + static_cast<std::ptrdiff_t>(min_at),
                cycle.end());
    std::string key;
    for (const std::string& n : cycle) key += n + "|";
    if (!seen.insert(key).second) return;

    std::string desc;
    const LockEdge* first_edge = nullptr;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const std::string& from = cycle[i];
      const std::string& to = cycle[(i + 1) % cycle.size()];
      const LockEdge& e = edges_[from][to];
      if (first_edge == nullptr) first_edge = &e;
      if (!desc.empty()) desc += ", ";
      desc += from + " -> " + to + " (in " + e.via + ", " +
              location(e.file, e.line) + ")";
    }
    findings.push_back(Finding{
        first_edge->file, first_edge->line, "lock-cycle",
        "lock-order cycle (potential deadlock): " + desc +
            " — acquire these locks in one global order, or annotate the "
            "intended exception with // bpsio-analyze: allow(lock-cycle)"});
  }

  const Program& prog_;
  std::map<std::string, std::map<std::string, LockEdge>> edges_;
  std::map<const Function*, std::set<std::string>> acquired_;
};

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<Finding> analyze(std::vector<SourceFile> files) {
  Program prog;
  prog.files = std::move(files);
  prog.build();
  std::vector<Finding> findings;
  check_interposer_safety(prog, findings);
  check_errno_preservation(prog, findings);
  LockGraph lock_graph(prog);
  lock_graph.build();
  lock_graph.report_cycles(findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check, a.detail) <
                     std::tie(b.file, b.line, b.check, b.detail);
            });
  return findings;
}

void print_findings(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    std::fprintf(stdout, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line + 1,
                 f.check.c_str(), f.detail.c_str());
  }
}

// ---------------------------------------------------------------------------
// Self-test: every check fires on a synthetic violation, stays quiet on the
// compliant twin, and honors the allow-comment escape hatch.
// ---------------------------------------------------------------------------

struct SelfFile {
  const char* path;
  const char* content;
};

std::vector<SourceFile> load_self_files(const std::vector<SelfFile>& files) {
  std::vector<SourceFile> sources;
  for (const SelfFile& f : files) {
    sources.push_back(
        bpsio::srcmodel::load_source(f.path, f.content, kAllowTag));
  }
  return sources;
}

std::size_t count_check(const std::vector<Finding>& findings,
                        const std::string& check) {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (f.check == check) ++n;
  }
  return n;
}

/// Re-run with an allow-comment inserted above the finding line; the finding
/// must disappear.
bool suppressed_by_allow(const std::vector<SelfFile>& files,
                         const Finding& finding) {
  std::vector<SourceFile> sources;
  for (const SelfFile& f : files) {
    std::string content = f.content;
    if (finding.file == f.path) {
      std::stringstream in(content);
      std::string line;
      std::vector<std::string> lines;
      while (std::getline(in, line)) lines.push_back(line);
      const std::string allow =
          "// " + std::string(kAllowTag) + ": allow(" + finding.check + ")";
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(finding.line),
                   allow);
      content.clear();
      for (const std::string& l : lines) content += l + "\n";
    }
    sources.push_back(bpsio::srcmodel::load_source(f.path, content, kAllowTag));
  }
  const std::vector<Finding> rerun = analyze(std::move(sources));
  return count_check(rerun, finding.check) == 0;
}

int self_test() {
  int failures = 0;
  const auto fail = [&failures](const std::string& what) {
    std::fprintf(stderr, "self-test FAILED: %s\n", what.c_str());
    ++failures;
  };

  // --- interposer-unsafe: fires through a 2-deep chain, with the chain in
  // the finding; the guarded twin and an allow both silence it. -------------
  {
    const std::vector<SelfFile> bad = {{
        "src/capture/interpose.cpp",
        "void helper_two() { void* p = malloc(32); use(p); }\n"
        "void helper_one() { helper_two(); }\n"
        "ssize_t read(int fd, void* buf, size_t count) {\n"
        "  helper_one();\n"
        "  return 0;\n"
        "}\n",
    }};
    const auto findings = analyze(load_self_files(bad));
    if (count_check(findings, "interposer-unsafe") != 1) {
      fail("interposer-unsafe did not fire through the call chain");
    } else {
      const Finding& f = findings.front();
      if (f.detail.find("read (") == std::string::npos ||
          f.detail.find("-> helper_one (") == std::string::npos ||
          f.detail.find("-> helper_two (") == std::string::npos ||
          f.detail.find("-> malloc (") == std::string::npos) {
        fail("interposer-unsafe finding lacks the full call chain: " +
             f.detail);
      }
      if (!suppressed_by_allow(bad, f)) {
        fail("allow-comment did not suppress interposer-unsafe");
      }
    }
    const std::vector<SelfFile> guarded = {{
        "src/capture/interpose.cpp",
        "void helper_two() {\n"
        "  ReentrancyGuard guard;\n"
        "  void* p = malloc(32);\n"
        "  use(p);\n"
        "}\n"
        "void helper_one() { helper_two(); }\n"
        "ssize_t read(int fd, void* buf, size_t count) {\n"
        "  helper_one();\n"
        "  return 0;\n"
        "}\n",
    }};
    if (count_check(analyze(load_self_files(guarded)), "interposer-unsafe") !=
        0) {
      fail("ReentrancyGuard did not excuse the guarded allocation");
    }
    const std::vector<SelfFile> unreachable = {{
        "src/capture/interpose.cpp",
        "void never_called() { void* p = malloc(32); use(p); }\n"
        "ssize_t read(int fd, void* buf, size_t count) { return 0; }\n",
    }};
    if (count_check(analyze(load_self_files(unreachable)),
                    "interposer-unsafe") != 0) {
      fail("interposer-unsafe flagged an unreachable function");
    }
    const std::vector<SelfFile> in_comment = {{
        "src/capture/interpose.cpp",
        "ssize_t read(int fd, void* buf, size_t count) {\n"
        "  // malloc(32) in a comment is not a call\n"
        "  const char* s = \"malloc(32)\";\n"
        "  use(s);\n"
        "  return 0;\n"
        "}\n",
    }};
    if (count_check(analyze(load_self_files(in_comment)),
                    "interposer-unsafe") != 0) {
      fail("interposer-unsafe matched inside a comment or string");
    }
    // A MutexLock anywhere on the reachable path is its own violation.
    const std::vector<SelfFile> locked = {{
        "src/capture/interpose.cpp",
        "void helper() { MutexLock lock(g_mu); touch(); }\n"
        "ssize_t write(int fd, const void* buf, size_t count) {\n"
        "  helper();\n"
        "  return 0;\n"
        "}\n",
    }};
    if (count_check(analyze(load_self_files(locked)), "interposer-unsafe") !=
        1) {
      fail("interposer-unsafe did not flag a MutexLock on the hot path");
    }
  }

  // --- errno-preservation ---------------------------------------------------
  {
    const std::vector<SelfFile> bad = {{
        "src/capture/interpose.cpp",
        "ssize_t write(int fd, const void* buf, size_t count) {\n"
        "  const ssize_t ret = fn(fd, buf, count);\n"
        "  record_io(1, count, ret);\n"
        "  return ret;\n"
        "}\n",
    }};
    const auto findings = analyze(load_self_files(bad));
    if (count_check(findings, "errno-preservation") != 1) {
      fail("errno-preservation did not fire on unprotected bookkeeping");
    } else if (!suppressed_by_allow(bad, findings.front())) {
      fail("allow-comment did not suppress errno-preservation");
    }
    const std::vector<SelfFile> good = {{
        "src/capture/interpose.cpp",
        "ssize_t write(int fd, const void* buf, size_t count) {\n"
        "  const ssize_t ret = fn(fd, buf, count);\n"
        "  const int saved_errno = errno;\n"
        "  record_io(1, count, ret);\n"
        "  errno = saved_errno;\n"
        "  return ret;\n"
        "}\n",
    }};
    if (count_check(analyze(load_self_files(good)), "errno-preservation") !=
        0) {
      fail("errno-preservation flagged a properly protected wrapper");
    }
    const std::vector<SelfFile> pre_call = {{
        "src/capture/interpose.cpp",
        "int close(int fd) {\n"
        "  note_close(fd);\n"
        "  return fn(fd);\n"
        "}\n",
    }};
    if (count_check(analyze(load_self_files(pre_call)),
                    "errno-preservation") != 0) {
      fail("errno-preservation flagged bookkeeping that runs pre-call");
    }
  }

  // --- lock-cycle -----------------------------------------------------------
  {
    const std::vector<SelfFile> bad = {{
        "src/agent/locks.cpp",
        "struct S {\n"
        "  void take_ab() {\n"
        "    MutexLock la(mu_a);\n"
        "    helper_b();\n"
        "  }\n"
        "  void helper_b() { MutexLock lb(mu_b); touch(); }\n"
        "  void take_ba() {\n"
        "    MutexLock lb(mu_b);\n"
        "    MutexLock la(mu_a);\n"
        "    touch();\n"
        "  }\n"
        "};\n",
    }};
    const auto findings = analyze(load_self_files(bad));
    if (count_check(findings, "lock-cycle") != 1) {
      fail("lock-cycle did not fire on an inverted pair across a call");
    } else {
      const Finding& f = findings.front();
      if (f.detail.find("S::mu_a -> S::mu_b") == std::string::npos ||
          f.detail.find("S::mu_b -> S::mu_a") == std::string::npos) {
        fail("lock-cycle finding lacks both edges: " + f.detail);
      }
      if (!suppressed_by_allow(bad, f)) {
        fail("allow-comment did not suppress lock-cycle");
      }
    }
    const std::vector<SelfFile> consistent = {{
        "src/agent/locks.cpp",
        "struct S {\n"
        "  void take_ab() {\n"
        "    MutexLock la(mu_a);\n"
        "    helper_b();\n"
        "  }\n"
        "  void helper_b() { MutexLock lb(mu_b); touch(); }\n"
        "  void also_ab() {\n"
        "    MutexLock la(mu_a);\n"
        "    MutexLock lb(mu_b);\n"
        "    touch();\n"
        "  }\n"
        "};\n",
    }};
    if (count_check(analyze(load_self_files(consistent)), "lock-cycle") != 0) {
      fail("lock-cycle flagged a consistent global order");
    }
    // Same member-lock names in two different classes are different locks.
    const std::vector<SelfFile> two_classes = {{
        "src/agent/locks.cpp",
        "struct A {\n"
        "  void f() { MutexLock l(mu_); g(); }\n"
        "};\n"
        "struct B {\n"
        "  void h() { MutexLock l(mu_); k(); }\n"
        "};\n",
    }};
    if (count_check(analyze(load_self_files(two_classes)), "lock-cycle") !=
        0) {
      fail("lock-cycle conflated same-named locks in different classes");
    }
  }

  if (failures == 0) {
    std::fprintf(stdout,
                 "bpsio-analyze self-test: all 3 checks verified (fire, "
                 "quiet twin, allow-comment)\n");
    return 0;
  }
  return 1;
}

// ---------------------------------------------------------------------------

std::optional<SourceFile> load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return bpsio::srcmodel::load_source(path, buffer.str(), kAllowTag);
}

}  // namespace

int main(int argc, char** argv) {
  bool run_self_test = false;
  std::string root;
  bpsio::cli::ArgParser parser(
      "bpsio_analyze",
      "Whole-program static analyzer: interposer hot-path safety, errno\n"
      "preservation in the capture wrappers, and static lock-order cycles.\n"
      "Suppress a finding with `// bpsio-analyze: allow(check)` on the line\n"
      "or a comment-only line above. See docs/STATIC_ANALYSIS.md.");
  parser.add_flag("--self-test", &run_self_test,
                  "verify every check fires and honors allow-comments");
  parser.add_string("--root", &root, "DIR",
                    "analyze all C++ sources under DIR/src and DIR/tools");
  parser.positionals("[file...]");
  std::vector<std::string> paths;
  switch (parser.parse(argc, argv, paths)) {
    case bpsio::cli::ArgParser::Outcome::ok:
      break;
    case bpsio::cli::ArgParser::Outcome::help:
      return 0;
    case bpsio::cli::ArgParser::Outcome::error:
      return 2;
  }
  if (run_self_test) return self_test();

  if (!root.empty()) {
    try {
      for (const char* sub : {"/src", "/tools"}) {
        for (std::string& f : collect_files(root + sub)) {
          paths.push_back(std::move(f));
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bpsio-analyze: cannot scan %s: %s\n", root.c_str(),
                   e.what());
      return 2;
    }
  }
  if (paths.empty()) {
    std::fputs(parser.usage().c_str(), stderr);
    return 2;
  }
  std::vector<SourceFile> sources;
  for (const std::string& path : paths) {
    auto src = load_file(path);
    if (!src) {
      std::fprintf(stderr, "bpsio-analyze: cannot read %s\n", path.c_str());
      return 2;
    }
    sources.push_back(std::move(*src));
  }
  const std::size_t scanned = sources.size();
  const std::vector<Finding> findings = analyze(std::move(sources));
  if (findings.empty()) {
    std::fprintf(stdout, "bpsio-analyze: clean (%zu files)\n", scanned);
    return 0;
  }
  print_findings(findings);
  std::fprintf(stdout, "bpsio-analyze: %zu finding(s) in %zu files\n",
               findings.size(), scanned);
  return 1;
}
