// Microbenchmark of the Step-3 overlapped-time algorithms (Figure 3).
//
// Compares the paper's verbatim algorithm against the clean sort-and-merge,
// the O(n^2) brute-force reference, and the sharded parallel engine across
// record counts (serial vs parallel at 10^4..10^7 intervals, 1/2/4/8
// threads), and validates the paper's overhead claim: "The complexity of
// the algorithm is O(nlog2n)" and "even for 65535 I/O operations, all the
// records need about 3 megabytes".
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "metrics/overlap.hpp"
#include "trace/io_record.hpp"

using namespace bpsio;

namespace {

std::vector<trace::TimeInterval> random_intervals(std::size_t n,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<trace::TimeInterval> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto start = static_cast<std::int64_t>(rng.uniform_u64(1'000'000'000));
    const auto len = static_cast<std::int64_t>(rng.uniform_u64(10'000'000));
    out.push_back({start, start + len});
  }
  return out;
}

void BM_OverlapPaper(benchmark::State& state) {
  const auto intervals =
      random_intervals(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    auto copy = intervals;
    benchmark::DoNotOptimize(metrics::overlap_time_paper(std::move(copy)));
  }
  state.SetComplexityN(state.range(0));
}

void BM_OverlapMerged(benchmark::State& state) {
  const auto intervals =
      random_intervals(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    auto copy = intervals;
    benchmark::DoNotOptimize(metrics::overlap_time_merged(std::move(copy)));
  }
  state.SetComplexityN(state.range(0));
}

void BM_OverlapBruteForce(benchmark::State& state) {
  const auto intervals =
      random_intervals(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::overlap_time_bruteforce(intervals));
  }
  state.SetComplexityN(state.range(0));
}

void BM_OverlapParallel(benchmark::State& state) {
  const auto intervals =
      random_intervals(static_cast<std::size_t>(state.range(0)), 42);
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    auto copy = intervals;
    benchmark::DoNotOptimize(
        metrics::overlap_time_parallel(std::move(copy), pool));
  }
  state.SetComplexityN(state.range(0));
}

void BM_RecordFootprint(benchmark::State& state) {
  // The paper's space-overhead analysis, as a measurable fact: 65535
  // records at 32 bytes each.
  for (auto _ : state) {
    std::vector<trace::IoRecord> records(65535);
    benchmark::DoNotOptimize(records.data());
    state.counters["bytes"] = static_cast<double>(
        records.size() * sizeof(trace::IoRecord));
  }
}

}  // namespace

BENCHMARK(BM_OverlapPaper)->Range(1 << 10, 1 << 20)->Complexity();
BENCHMARK(BM_OverlapMerged)->Range(1 << 10, 1 << 20)->Complexity();
// The serial baselines the parallel engine is judged against (same sizes).
BENCHMARK(BM_OverlapMerged)
    ->Arg(10'000)->Arg(100'000)->Arg(1'000'000)->Arg(10'000'000);
BENCHMARK(BM_OverlapBruteForce)->Range(1 << 7, 1 << 11)->Complexity();
// Sharded engine: {interval count} x {thread count}. threads=1 routes
// through the serial path (sanity anchor); the ≥2x target is the 10^7 row
// at 4 and 8 threads vs BM_OverlapMerged/10000000.
BENCHMARK(BM_OverlapParallel)
    ->ArgNames({"n", "threads"})
    ->ArgsProduct({{10'000, 100'000, 1'000'000, 10'000'000}, {1, 2, 4, 8}});
BENCHMARK(BM_RecordFootprint);

BENCHMARK_MAIN();
