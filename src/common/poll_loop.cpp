#include "common/poll_loop.hpp"

#include <cerrno>

namespace bpsio {

void PollLoop::add_listener(int fd, std::function<void()> on_ready) {
  listeners_.push_back(Listener{fd, std::move(on_ready)});
}

Status PollLoop::round(std::span<const int> conn_fds, int timeout_ms,
                       const std::function<bool(std::size_t)>& on_conn) {
  fds_.clear();
  for (const Listener& listener : listeners_) {
    fds_.push_back({listener.fd, POLLIN, 0});
  }
  for (const int fd : conn_fds) {
    fds_.push_back({fd, POLLIN, 0});
  }
  const int ready = ::poll(fds_.data(), fds_.size(), timeout_ms);
  if (ready < 0 && errno != EINTR) {
    return Error{Errc::io_error, "poll failed"};
  }
  if (ready <= 0) return {};

  // Listener callbacks may append to the caller's connection set; fds_ only
  // has entries for the snapshot `conn_fds` was built from — the scan below
  // is bounded by that count, or a freshly accepted connection would read
  // past the end of fds_ (the PR-5 regression test_poll_loop pins).
  const std::size_t polled_conns = conn_fds.size();
  for (std::size_t l = 0; l < listeners_.size(); ++l) {
    if ((fds_[l].revents & POLLIN) != 0) listeners_[l].on_ready();
  }
  const std::size_t base = listeners_.size();
  for (std::size_t i = 0; i < polled_conns; ++i) {
    const short revents = fds_[base + i].revents;
    if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    if (!on_conn(i)) {
      // The callback removed connection i: every later index shifted, so
      // the remaining revents are stale. Re-poll next round.
      break;
    }
  }
  return {};
}

}  // namespace bpsio
