#include "metrics/latency.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "stats/descriptive.hpp"

namespace bpsio::metrics {

LatencySummary latency_summary(const trace::TraceCollector& collector,
                               const trace::RecordFilter& filter) {
  std::vector<double> rts;
  rts.reserve(collector.record_count());
  double sum = 0;
  for (const auto& r : collector.records()) {
    if (!filter.matches(r)) continue;
    const double rt = r.response_time().seconds();
    rts.push_back(rt);
    sum += rt;
  }
  LatencySummary s;
  s.count = rts.size();
  if (rts.empty()) return s;
  s.mean_s = sum / static_cast<double>(rts.size());
  s.max_s = *std::max_element(rts.begin(), rts.end());
  s.p50_s = stats::percentile(rts, 50);
  s.p95_s = stats::percentile(rts, 95);
  s.p99_s = stats::percentile(rts, 99);
  return s;
}

std::string LatencySummary::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms "
                "max=%.3fms",
                count, mean_s * 1e3, p50_s * 1e3, p95_s * 1e3, p99_s * 1e3,
                max_s * 1e3);
  return buf;
}

stats::LogHistogram latency_histogram(const trace::TraceCollector& collector,
                                      const trace::RecordFilter& filter) {
  stats::LogHistogram hist(1e-6, 100.0, 2.0);
  for (const auto& r : collector.records()) {
    if (!filter.matches(r)) continue;
    hist.add(r.response_time().seconds());
  }
  return hist;
}

}  // namespace bpsio::metrics
