#include <gtest/gtest.h>

#include "common/format.hpp"

namespace bpsio {
namespace {

TEST(Format, HumanBytesExactUnits) {
  EXPECT_EQ(human_bytes(0), "0B");
  EXPECT_EQ(human_bytes(512), "512B");
  EXPECT_EQ(human_bytes(4096), "4KiB");
  EXPECT_EQ(human_bytes(kMiB), "1MiB");
  EXPECT_EQ(human_bytes(64 * kGiB), "64GiB");
  EXPECT_EQ(human_bytes(2 * kTiB), "2TiB");
}

TEST(Format, HumanBytesFractional) {
  EXPECT_EQ(human_bytes(1536), "1.50KiB");
  EXPECT_EQ(human_bytes(kMiB + kMiB / 2), "1.50MiB");
}

TEST(Format, HumanRate) {
  EXPECT_EQ(human_rate(500.0), "500.00 B/s");
  EXPECT_EQ(human_rate(1.5e3), "1.50 KB/s");
  EXPECT_EQ(human_rate(2.5e6), "2.50 MB/s");
  EXPECT_EQ(human_rate(1.25e9), "1.25 GB/s");
}

TEST(Format, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-1.0, 0), "-1");
  EXPECT_EQ(fmt_double(0.5), "0.500");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"xxxx", "1"});
  t.add_row({"y", "22"});
  const std::string s = t.to_string();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  // All lines equally padded up to the last column (no trailing pad).
  EXPECT_NE(s.find("a     long-header"), std::string::npos);
  EXPECT_NE(s.find("xxxx  1"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW({ const auto s = t.to_string(); (void)s; });
}

TEST(TextTable, Csv) {
  TextTable t({"h1", "h2"});
  t.add_row({"v1", "v2"});
  EXPECT_EQ(t.to_csv(), "h1,h2\nv1,v2\n");
}

}  // namespace
}  // namespace bpsio
