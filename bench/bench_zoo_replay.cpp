// Harness bench: the zoo trace round trip — Darshan-text import followed by
// a closed-loop simulator replay (the `bpsio_zoo import` + `replay` path).
//
// Pre-generates one zoo scenario run (dlrm: the record-densest scenario),
// tiles its trace to the requested record count (time-shifted copies, so
// the replay's per-pid schedules stay ordered), and exports it to the
// per-access text form once. Each harness sample then does the full
// consumer path: parse_darshan over the text, TraceReplayWorkload over the
// parsed records on a fresh RAM testbed. Self-checks that replay reproduces
// the source B exactly — the differential-replay invariant — every sample.
// Emits BENCH_zoo_replay.json; throughput is replayed records/sec.
#include <cstdio>
#include <vector>

#include "bench/bench_cli.hpp"
#include "common/check.hpp"
#include "core/testbed.hpp"
#include "workload/registry.hpp"
#include "workload/zoo/darshan_import.hpp"
#include "workload/zoo/zoo.hpp"

using namespace bpsio;

namespace {

core::TestbedConfig ram_local() {
  core::TestbedConfig cfg;
  cfg.backend = core::BackendKind::local;
  cfg.device = pfs::DeviceKind::ram;
  cfg.ram.capacity = 512 * kMiB;
  return cfg;
}

/// One dlrm run's records, tiled with a time shift until >= n records.
std::vector<trace::IoRecord> tiled_zoo_trace(std::uint64_t n,
                                             std::uint64_t seed) {
  workload::zoo::ZooParams params;
  params.seed = seed;
  const auto plan = workload::zoo::build_plan("dlrm", params);
  BPSIO_CHECK(plan.ok(), "dlrm plan must build");
  core::Testbed testbed(ram_local());
  const auto run = workload::make_workload(*plan)->run(testbed.env());
  const std::vector<trace::IoRecord>& base = run.collector.records();
  BPSIO_CHECK(!base.empty(), "dlrm run must produce records");

  std::int64_t span = 0;
  for (const trace::IoRecord& r : base) span = std::max(span, r.end_ns);
  span += 1'000'000;  // 1 ms inter-tile gap

  std::vector<trace::IoRecord> tiled;
  tiled.reserve(n + base.size());
  std::int64_t shift = 0;
  while (tiled.size() < n) {
    for (const trace::IoRecord& r : base) {
      trace::IoRecord copy = r;
      copy.start_ns += shift;
      copy.end_ns += shift;
      tiled.push_back(copy);
    }
    shift += span;
  }
  return tiled;
}

}  // namespace

int main(int argc, char** argv) {
  bench::CommonBenchArgs args;
  cli::ArgParser parser("bench_zoo_replay",
                        "Darshan-text import + closed-loop simulator replay "
                        "of a tiled zoo (dlrm) trace, with a statistical "
                        "harness.");
  bench::register_common_flags(parser, &args, /*with_threads=*/false);
  std::vector<std::string> positionals;
  switch (parser.parse(argc, argv, positionals)) {
    case cli::ArgParser::Outcome::help: return 0;
    case cli::ArgParser::Outcome::error: return 2;
    case cli::ArgParser::Outcome::ok: break;
  }

  const std::uint64_t n = bench::resolve_records(args, 10'000, 100'000);
  const auto source = tiled_zoo_trace(n, static_cast<std::uint64_t>(args.seed));
  const std::string text = workload::zoo::export_darshan(source);
  trace::TraceCollector source_stats;
  source_stats.gather(source);
  const std::uint64_t source_blocks = source_stats.total_blocks();
  std::printf("=== zoo replay: %zu records (dlrm tiled), %zu KiB of text, "
              "seed=%llu ===\n",
              source.size(), text.size() / 1024,
              static_cast<unsigned long long>(args.seed));

  const auto cfg = bench::make_harness_config("zoo_replay", args);
  const bench::BenchHarness harness(cfg);
  const auto result = harness.run([&] {
    const auto parsed = workload::zoo::parse_darshan(text);
    BPSIO_CHECK(parsed.ok(), "exported zoo trace must re-import");
    BPSIO_CHECK(parsed->size() == source.size(),
                "import must preserve the record count");
    workload::ReplayConfig replay;
    replay.records = *parsed;
    replay.mode = workload::ReplayConfig::Mode::closed_loop;
    core::Testbed testbed(ram_local());
    const auto run = workload::make_workload(replay)->run(testbed.env());
    BPSIO_CHECK(run.collector.total_blocks() == source_blocks,
                "replay must reproduce the source B exactly");
    return static_cast<double>(run.collector.record_count());
  });
  return bench::report_result(args, cfg, result,
                              {{"records", std::to_string(source.size())},
                               {"scenario", "dlrm"},
                               {"profile", args.profile}});
}
