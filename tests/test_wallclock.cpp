#include "common/wallclock.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace bpsio {
namespace {

TEST(Wallclock, MonotonicNeverDecreasesAcross1kSamples) {
  std::vector<std::int64_t> samples(1000);
  for (auto& s : samples) s = monotonic_ns();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    ASSERT_GE(samples[i], samples[i - 1]) << "sample " << i;
  }
}

TEST(Wallclock, MonotonicIsPositive) {
  // CLOCK_MONOTONIC counts from boot; a zero reading means the clock call
  // failed, which the capture subsystem treats as unusable.
  EXPECT_GT(monotonic_ns(), 0);
}

TEST(Wallclock, MonotonicAdvancesEventually) {
  const std::int64_t first = monotonic_ns();
  std::int64_t last = first;
  // A nanosecond-resolution monotonic clock must tick within a bounded
  // number of reads (vDSO reads are ~20ns apart in practice).
  for (int i = 0; i < 1'000'000 && last == first; ++i) last = monotonic_ns();
  EXPECT_GT(last, first);
}

TEST(Wallclock, RealtimeIsPastKnownEpoch) {
  // 2020-01-01 in ns since the Unix epoch — catches sec/ns unit mix-ups.
  constexpr std::int64_t k2020 = 1'577'836'800LL * 1'000'000'000LL;
  EXPECT_GT(realtime_ns(), k2020);
}

}  // namespace
}  // namespace bpsio
