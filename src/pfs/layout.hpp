// File striping layout — PVFS2-style round-robin distribution.
//
// A file is divided into stripe units of `stripe_size` bytes, dealt
// round-robin across an explicit, ordered list of I/O servers (PVFS2's
// "simple stripe" distribution). The paper's Set-3a experiment pins each
// file to a single server by "setting the file stripe layout attributes
// when it was created" — expressed here as a one-element server list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace bpsio::pfs {

struct StripeLayout {
  Bytes stripe_size = 64 * kKiB;  ///< PVFS2 default strip size
  std::vector<std::uint32_t> servers;  ///< ordered server ids (>=1 entry)

  std::uint32_t server_count() const {
    return static_cast<std::uint32_t>(servers.size());
  }

  std::string to_string() const;
};

/// One contiguous piece of a striped request on a single server.
struct ServerRun {
  std::uint32_t server = 0;   ///< index into layout.servers
  Bytes local_offset = 0;     ///< offset within the server-local object
  Bytes length = 0;

  friend bool operator==(const ServerRun&, const ServerRun&) = default;
};

/// Split logical range [offset, offset+size) across the layout's servers and
/// merge per-server contiguous pieces. Runs are returned grouped by server
/// in layout order; within a server, runs are sorted by local offset and
/// maximally merged (a full-stripe sequential read yields exactly one run
/// per server).
std::vector<ServerRun> split_range(const StripeLayout& layout, Bytes offset,
                                   Bytes size);

/// Size of the server-local object backing `logical_size` bytes on the
/// `which`-th server of the layout (used when creating per-server objects).
Bytes server_object_size(const StripeLayout& layout, Bytes logical_size,
                         std::uint32_t which);

}  // namespace bpsio::pfs
