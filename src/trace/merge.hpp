// Combining traces from multiple applications.
//
// "If the I/O system services more than one application concurrently, we
//  record the I/O access information of all the applications." (Sec. III.B)
// When the applications were traced separately, their records must be
// merged into one collection before computing BPS: pids are remapped to
// avoid collisions, and time bases can be aligned when the traces were
// captured against different clocks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/thread_pool.hpp"
#include "trace/io_record.hpp"

namespace bpsio::trace {

class RecordSource;  // record_source.hpp

enum class TimeAlignment {
  keep,         ///< trust the recorded timestamps (shared clock)
  align_starts, ///< shift each trace so its earliest start is t=0
};

struct MergeOptions {
  TimeAlignment alignment = TimeAlignment::keep;
  /// Remap pids to (source_index+1) * pid_stride + original_pid so records
  /// from different applications never collide. 0 = keep original pids, even
  /// when sources share pid values — callers opting out of remapping accept
  /// that records from different applications become indistinguishable by
  /// pid (per-pid filters then select the union of the colliding processes).
  std::uint32_t pid_stride = 1000;
};

/// Merge several applications' record sets into one, sorted by start time
/// (ties by end time; tie order beyond that is unspecified).
std::vector<IoRecord> merge_traces(
    const std::vector<std::vector<IoRecord>>& traces,
    const MergeOptions& options = {});

/// Pool-parallel merge: each source trace is shifted/remapped and sorted on
/// its own worker, then the sorted sources are k-way merged. Output is fully
/// deterministic — ordered by (start, end), ties broken by source index then
/// original position — and is a permutation-equal reordering of the serial
/// merge_traces() result (identical multiset of records, identical order
/// wherever (start, end) keys are distinct).
std::vector<IoRecord> merge_traces_parallel(
    const std::vector<std::vector<IoRecord>>& traces, ThreadPool& pool,
    const MergeOptions& options = {});

/// Streaming counterpart of merge_traces_parallel(): wraps each input trace
/// in a sorted in-memory source and k-way merges them through a
/// MergedSource. Yields exactly the record sequence merge_traces_parallel()
/// returns — ordered by (start, end), ties by source index then original
/// position — but chunk by chunk, without building the merged vector.
/// Copies each input once (for the per-source sort); inputs that are
/// already on disk should feed SpilledTraceSource children to a
/// MergedSource directly instead.
std::unique_ptr<RecordSource> merged_record_source(
    const std::vector<std::vector<IoRecord>>& traces,
    const MergeOptions& options = {});

/// Shift every record by `delta_ns` (e.g. to concatenate phases).
std::vector<IoRecord> shift_trace(std::vector<IoRecord> records,
                                  std::int64_t delta_ns);

/// K-way merge several on-disk, start-ordered trace files (per-connection
/// or per-stream spools) into one sorted v2 trace at `out_path` —
/// TimeAlignment::keep, pid_stride 0, exactly the daemon drain contract:
/// captured records carry real distinct pids and a shared monotonic clock.
/// The paths are sorted first so the merge order (and therefore the exact
/// tie-break order of equal-keyed records) is deterministic. An empty path
/// list writes a valid empty trace.
Status merge_trace_files(std::vector<std::string> paths,
                         const std::string& out_path);

}  // namespace bpsio::trace
