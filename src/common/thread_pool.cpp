#include "common/thread_pool.hpp"

#include <deque>
#include <thread>

#include "common/config.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace bpsio {

struct ThreadPool::Impl {
  Mutex mu;
  CondVar work_cv;   ///< workers wait for tasks
  CondVar done_cv;   ///< run_all waits for drain
  std::deque<std::function<void()>> queue BPSIO_GUARDED_BY(mu);
  std::size_t in_flight BPSIO_GUARDED_BY(mu) = 0;  ///< queued + executing
  bool stop BPSIO_GUARDED_BY(mu) = false;
  std::vector<std::thread> workers;  ///< ctor/dtor thread only

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu);
        while (!stop && queue.empty()) work_cv.wait(mu);
        if (stop && queue.empty()) return;
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
      {
        MutexLock lock(mu);
        if (--in_flight == 0) done_cv.notify_all();
      }
    }
  }
};

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(std::size_t threads) {
  size_ = threads == 0 ? hardware_threads() : threads;
  if (size_ == 1) return;  // inline mode, no workers
  impl_ = new Impl;
  impl_->workers.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (!impl_) return;
  {
    MutexLock lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (!impl_) {
    for (auto& t : tasks) t();
    return;
  }
  {
    MutexLock lock(impl_->mu);
    impl_->in_flight += tasks.size();
    for (auto& t : tasks) impl_->queue.push_back(std::move(t));
  }
  impl_->work_cv.notify_all();
  MutexLock lock(impl_->mu);
  while (impl_->in_flight != 0) impl_->done_cv.wait(impl_->mu);
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min(size_, count);
  if (chunks <= 1) {
    body(0, count);
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  // ceil division so the last chunk is the short one.
  const std::size_t per = (count + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < count; begin += per) {
    const std::size_t end = std::min(begin + per, count);
    tasks.push_back([&body, begin, end] { body(begin, end); });
  }
  run_all(std::move(tasks));
}

std::size_t resolve_threads(const Config& cfg, const char* key,
                            std::size_t dflt) {
  const auto v = cfg.get_int(key, static_cast<std::int64_t>(dflt));
  if (v <= 0) return ThreadPool::hardware_threads();
  return static_cast<std::size_t>(v);
}

}  // namespace bpsio
