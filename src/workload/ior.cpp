#include "workload/ior.hpp"

#include <memory>

#include "common/check.hpp"
#include "common/log.hpp"

namespace bpsio::workload {

RunResult IorWorkload::run(Env& env) {
  BPSIO_CHECK(env.sim && !env.nodes.empty(),
              "workload environment needs a simulator and client nodes");
  const SimTime t0 = env.sim->now();
  const std::uint32_t nprocs = config_.processes;
  const Bytes segment = nprocs ? config_.file_size / nprocs : 0;

  std::vector<std::unique_ptr<Process>> processes;
  processes.reserve(nprocs);
  std::unique_ptr<mio::CollectiveGroup> group;
  if (config_.collective) {
    mio::CollectiveConfig cc;
    cc.aggregators = config_.aggregators;
    group = std::make_unique<mio::CollectiveGroup>(*env.sim, nprocs, cc);
  }

  for (std::uint32_t p = 0; p < nprocs; ++p) {
    const std::size_t node = p % env.node_count();
    auto proc = std::make_unique<Process>(*env.nodes[node],
                                          *env.backends[node], p + 1,
                                          env.block_size);
    Result<fs::FileHandle> handle =
        p == 0 ? proc->io().create(config_.path,
                                   config_.write ? 0 : config_.file_size)
               : proc->io().open(config_.path);
    if (!handle && p != 0) {
      // Shared namespace may be a single FileApi instance (local FS): the
      // path already exists, so open; with per-node PFS clients, lookup
      // happens through the shared metadata server either way.
      handle = proc->io().open(config_.path);
    }
    if (!handle) {
      BPSIO_ERROR("ior: cannot set up %s: %s", config_.path.c_str(),
                  handle.error().to_string().c_str());
      continue;
    }
    proc->set_file(*handle);

    const Bytes start = p * segment;
    std::vector<AppOp> ops;
    if (config_.collective) {
      // Each collective call covers one transfer-sized piece of the
      // process's segment.
      const std::uint64_t calls = segment / config_.transfer_size;
      for (std::uint64_t i = 0; i < calls; ++i) {
        AppOp op;
        op.kind = config_.write ? AppOp::Kind::collective_write
                                : AppOp::Kind::collective_read;
        op.regions = {mio::Region{start + i * config_.transfer_size,
                                  config_.transfer_size}};
        ops.push_back(std::move(op));
      }
      proc->set_collective_group(group.get());
    } else {
      ops = strided_ops(config_.write ? AppOp::Kind::write : AppOp::Kind::read,
                        start, config_.transfer_size, config_.transfer_size,
                        segment / config_.transfer_size);
    }
    proc->set_ops(std::move(ops));
    proc->set_think_time(config_.think);
    processes.push_back(std::move(proc));
  }

  RunResult result = run_processes(env, processes, t0);
  return result;
}

}  // namespace bpsio::workload
