// Middleware-level sequential prefetching (cf. the paper's citation of
// pre-execution / signature-based MPI-IO prefetching, refs [13][14]).
//
// When a process's reads on a handle form a sequential streak, the
// prefetcher keeps a bounded number of windows fetched ahead of the
// consumption point (the "frontier"). Application reads inside a completed
// window are served with no backend I/O; reads inside an in-flight window
// wait for it. Prefetch traffic inflates FS-level moved bytes but not B —
// an ablation knob for the bandwidth-misleads story.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/units.hpp"
#include "fs/file_api.hpp"
#include "sim/simulator.hpp"

namespace bpsio::mio {

class IoClient;

struct PrefetchConfig {
  Bytes window = 4 * kMiB;           ///< bytes fetched per prefetch request
  std::uint32_t trigger_streak = 2;  ///< sequential reads before prefetching
  std::uint32_t depth = 2;           ///< windows kept ahead of consumption
  std::size_t max_windows = 8;       ///< retained windows per handle
};

struct PrefetchStats {
  std::uint64_t prefetches_issued = 0;
  Bytes bytes_prefetched = 0;
  std::uint64_t full_hits = 0;   ///< app reads served from a completed window
  std::uint64_t wait_hits = 0;   ///< app reads that waited on an in-flight window
  std::uint64_t misses = 0;
};

class Prefetcher {
 public:
  Prefetcher(IoClient& client, PrefetchConfig config)
      : client_(client), config_(config) {}

  /// Route an application read; `complete` fires when data is available.
  void read(fs::FileHandle h, Bytes offset, Bytes size,
            const std::function<void(fs::IoOutcome)>& complete);

  void invalidate(fs::FileHandle h);
  void invalidate_all();

  const PrefetchStats& stats() const { return stats_; }

 private:
  struct Window {
    Bytes start = 0;
    Bytes end = 0;
    bool done = false;
    std::vector<std::function<void()>> waiters;
  };
  struct HandleState {
    Bytes next_expected = 0;
    std::uint32_t streak = 0;
    Bytes frontier = 0;  ///< highest prefetched-to offset
    bool eof = false;    ///< a prefetch came back short: stop fetching
    std::deque<Window> windows;
  };

  Window* covering_window(HandleState& st, Bytes offset, Bytes end);
  /// Top up the pipeline so `frontier` stays within depth*window of
  /// `consumed_end`.
  void maybe_prefetch(fs::FileHandle h, HandleState& st, Bytes consumed_end);

  IoClient& client_;
  PrefetchConfig config_;
  std::map<std::uint32_t, HandleState> state_;
  PrefetchStats stats_;
};

}  // namespace bpsio::mio
