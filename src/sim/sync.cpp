#include "sim/sync.hpp"

#include <memory>

namespace bpsio::sim {

void Barrier::arrive(EventFn resume) {
  waiters_.push_back(std::move(resume));
  if (waiters_.size() == parties_) {
    ++rounds_;
    std::vector<EventFn> to_fire;
    to_fire.swap(waiters_);
    for (auto& fn : to_fire) {
      sim_.schedule_now(std::move(fn));
    }
  }
}

void fan_out(Simulator& sim, std::uint64_t count,
             const std::function<void(std::uint64_t, EventFn)>& spawn,
             EventFn all_done) {
  auto join = std::make_shared<std::unique_ptr<JoinCounter>>();
  *join = std::make_unique<JoinCounter>(sim, count,
                                        [join, done = std::move(all_done)]() {
                                          done();
                                          // release after firing
                                          join->reset();
                                        });
  for (std::uint64_t i = 0; i < count; ++i) {
    spawn(i, [join]() { (*join)->complete_one(); });
  }
}

}  // namespace bpsio::sim
