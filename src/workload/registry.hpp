// String-keyed workload registry — THE way to construct workloads.
//
// Historically every call site constructed concrete workload classes
// directly (`IozoneWorkload{cfg}`), which meant tools, sweeps, and examples
// each hard-coded the catalog. The registry centralizes it:
//
//   auto w = workload::make_workload("iozone", params);   // by name
//   auto w = workload::make_workload(IozoneConfig{...});  // typed
//   workload::registry().names();                         // discovery
//
// Params is the flat k=v Config used across the CLIs (byte suffixes like
// 64K understood), so `bpsio_sweep --workload=zoo.bert --set scale=0.5`
// needs no per-workload argument plumbing. Unknown names fail with
// Errc::not_found, unknown parameter keys with Errc::invalid_argument —
// typos surface instead of silently using defaults.
//
// Direct construction of the concrete classes still compiles (the typed
// make_workload overloads delegate to it) but is DEPRECATED for callers:
// see docs/API.md. Everything in-repo goes through this interface.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/result.hpp"
#include "workload/hpio.hpp"
#include "workload/ior.hpp"
#include "workload/iozone.hpp"
#include "workload/openloop.hpp"
#include "workload/replay.hpp"
#include "workload/workload.hpp"
#include "workload/zoo/zoo.hpp"

namespace bpsio::workload {

using WorkloadPtr = std::unique_ptr<Workload>;

/// Construction parameters: flat string k=v pairs with typed lookups.
using Params = Config;

/// The immutable catalog of constructible workloads. Built once (all
/// built-in workloads plus one "zoo.<scenario>" entry per zoo catalog
/// entry); thereafter read-only, so it is safe to share across threads.
class Registry {
 public:
  struct Entry {
    std::string name;     ///< registry key ("iozone", "zoo.bert", ...)
    std::string summary;  ///< one line for CLI listings
    /// Allowed Params keys, for typo rejection and --help output.
    std::vector<std::string> keys;
    std::function<Result<WorkloadPtr>(const Params&)> factory;
  };

  /// Registered names in catalog order (synthetics first, then zoo).
  const std::vector<std::string>& names() const { return names_; }
  bool contains(const std::string& name) const;
  const Entry* find(const std::string& name) const;
  const std::vector<Entry>& entries() const { return entries_; }

  /// Construct by name. Errc::not_found for unknown names;
  /// Errc::invalid_argument for unknown or malformed parameters.
  Result<WorkloadPtr> make(const std::string& name,
                           const Params& params = {}) const;

 private:
  friend const Registry& registry();
  Registry();

  std::vector<Entry> entries_;
  std::vector<std::string> names_;
};

/// The process-wide catalog (immutable after first use).
const Registry& registry();

/// Shorthand for registry().make(name, params).
Result<WorkloadPtr> make_workload(const std::string& name,
                                  const Params& params = {});

// Typed construction for callers that already hold a config struct (tests,
// benches, sweep builders). These cannot fail and keep full type safety;
// they are the blessed replacement for `std::make_unique<XWorkload>(cfg)`.
WorkloadPtr make_workload(IozoneConfig config);
WorkloadPtr make_workload(IorConfig config);
WorkloadPtr make_workload(HpioConfig config);
WorkloadPtr make_workload(OpenLoopConfig config);
WorkloadPtr make_workload(ReplayConfig config);
WorkloadPtr make_workload(zoo::ZooPlan plan);

}  // namespace bpsio::workload
