#include "pfs/cluster.hpp"

#include "device/hdd_model.hpp"
#include "device/ram_device.hpp"
#include "device/ssd_model.hpp"
#include "pfs/pfs_client.hpp"

namespace bpsio::pfs {

IoServer::IoServer(sim::Simulator& sim, Network& net, std::uint32_t id,
                   std::unique_ptr<device::BlockDevice> dev,
                   fs::LocalFsParams fs_params, IoServerParams params)
    : sim_(sim),
      id_(id),
      dev_(std::move(dev)),
      nic_(net.make_nic("server" + std::to_string(id))),
      cpu_(sim, params.cpu_slots, "server" + std::to_string(id) + ".cpu"),
      params_(params) {
  fs_ = std::make_unique<fs::LocalFileSystem>(sim_, *dev_, fs_params);
}

Result<fs::FileHandle> IoServer::create_object(const std::string& name,
                                               Bytes size) {
  return fs_->create(name, size);
}

void IoServer::execute(device::DevOp op, fs::FileHandle object, Bytes offset,
                       Bytes size, std::function<void(bool)> done) {
  cpu_.submit(params_.request_overhead,
              [this, op, object, offset, size, done = std::move(done)](
                  SimTime, SimTime) {
                auto fs_done = [done = std::move(done)](fs::IoOutcome out) {
                  done(out.ok);
                };
                if (op == device::DevOp::read) {
                  fs_->read(object, offset, size, std::move(fs_done));
                } else {
                  fs_->write(object, offset, size, std::move(fs_done));
                }
              });
}

Result<PfsFileMeta*> MetadataServer::create(const std::string& path,
                                            StripeLayout layout) {
  if (files_.count(path)) return Error{Errc::already_exists, path};
  auto meta = std::make_unique<PfsFileMeta>();
  meta->file_id = next_file_id_++;
  meta->path = path;
  meta->layout = std::move(layout);
  PfsFileMeta* raw = meta.get();
  files_[path] = std::move(meta);
  return raw;
}

Result<PfsFileMeta*> MetadataServer::lookup(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) return Error{Errc::not_found, path};
  return it->second.get();
}

Status MetadataServer::remove(const std::string& path) {
  return files_.erase(path) ? Status{} : Status{Errc::not_found, path};
}

PfsCluster::PfsCluster(sim::Simulator& sim, PfsClusterParams params)
    : sim_(sim), params_(std::move(params)), net_(sim, params_.network) {
  for (std::uint32_t i = 0; i < params_.server_count; ++i) {
    servers_.push_back(std::make_unique<IoServer>(
        sim_, net_, i, make_device(params_.seed + i), params_.server_fs,
        params_.server));
  }
}

PfsCluster::~PfsCluster() = default;

std::unique_ptr<device::BlockDevice> PfsCluster::make_device(
    std::uint64_t seed) {
  switch (params_.device) {
    case DeviceKind::hdd:
      return std::make_unique<device::HddModel>(sim_, params_.hdd, seed);
    case DeviceKind::ssd:
      return std::make_unique<device::SsdModel>(sim_, params_.ssd, seed);
    case DeviceKind::ram:
      return std::make_unique<device::RamDevice>(sim_, params_.ram);
  }
  return std::make_unique<device::RamDevice>(sim_, params_.ram);
}

PfsClient& PfsCluster::make_client(const std::string& name) {
  clients_.push_back(std::make_unique<PfsClient>(*this, name));
  return *clients_.back();
}

StripeLayout PfsCluster::default_layout() const {
  StripeLayout layout;
  layout.stripe_size = params_.default_stripe_size;
  for (std::uint32_t i = 0; i < params_.server_count; ++i) {
    layout.servers.push_back(i);
  }
  return layout;
}

void PfsCluster::drop_all_caches() {
  for (auto& s : servers_) s->filesystem().drop_caches();
}

Bytes PfsCluster::device_bytes_moved() const {
  Bytes total = 0;
  for (const auto& s : servers_) {
    total += s->device().stats().total_bytes();
  }
  return total;
}

Bytes PfsCluster::client_bytes_moved() const {
  Bytes total = 0;
  for (const auto& c : clients_) total += c->bytes_moved();
  return total;
}

void PfsCluster::reset_counters() {
  for (auto& s : servers_) {
    s->filesystem().reset_counters();
    s->device().clear_stats();
  }
  for (auto& c : clients_) c->reset_counters();
}

}  // namespace bpsio::pfs
