// bpsio_collectord's engine: the fleet-scale tier above bpsio_agentd.
//
// One collector ingests BPSF/BPSG frame streams from many agents — either
// capture clients pointed straight at it, or bpsio_agentd forwarders
// shipping their downstream traffic upstream (--forward). Where the agent
// daemon is a single poll() loop, the collector splits the work across
// threads:
//
//   * the MAIN thread owns the listeners (Unix socket, optional loopback
//     TCP, HTTP /metrics) plus the CSV ticker. Accepted agent connections
//     are handed to an I/O worker round-robin via a tiny mutex-protected
//     inbox; workers notice within one 50 ms poll round, so no wakeup pipe
//     is needed;
//   * each I/O WORKER thread owns its connections outright — decoder, spool
//     files, tenant handle — and runs its own common/poll_loop.hpp round.
//     Nothing per-connection is ever shared, so the only cross-thread state
//     is the sharded TenantShards (span-batched, finely locked) and a few
//     transport atomics.
//
// Tenancy: a connection's first frame may be a hello ("BPSH") naming its
// tenant; hello-less connections land in "default". The tenant handle is
// resolved once, at the first data frame, and cached on the connection.
//
// Per-connection failure is isolated exactly like the agent daemon: a
// malformed frame poisons that connection's decoder and drops that
// connection only; a peer dying mid-frame discards only the torn tail
// (unacknowledged by contract — the sender re-ships via its spill path).
//
// Drain: with --drain, every (connection, origin-stream) pair spools to its
// own .bpstrace — each start-ordered by the framing contract — and
// shutdown k-way merges all spools (trace::merge_trace_files) into one
// sorted v2 trace with bit-identical B and T to a direct file spill of the
// same records. --drain-tenant-dir additionally writes one merged trace per
// tenant.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collector/tenant_shards.hpp"
#include "common/mutex.hpp"
#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "trace/frame.hpp"

namespace bpsio::trace {
class SpillWriter;  // spill_writer.hpp
}

namespace bpsio::collector {

/// Tenant label for connections that never sent a hello frame.
inline constexpr const char* kDefaultTenant = "default";

struct CollectorOptions {
  /// Unix-domain socket path agents connect to (required). An existing
  /// socket file at this path is replaced.
  std::string socket_path;

  /// TCP ingest port for agents on other hosts' loopback-forwarded tunnels
  /// (bound on 127.0.0.1 — fleet transport security is out of scope).
  /// 0 picks an ephemeral port (see tcp_port_file); -1 disables TCP ingest.
  int tcp_port = -1;
  /// When non-empty, the bound TCP ingest port is written here.
  std::string tcp_port_file;

  /// Loopback /metrics port; 0 = ephemeral (see port_file), -1 = no HTTP.
  int http_port = 0;
  /// When non-empty, the bound HTTP port is written here.
  std::string port_file;

  /// When non-empty, a per-tenant CSV snapshot (TenantShards::csv_snapshot)
  /// is rewritten atomically at this path every csv_interval.
  std::string csv_path;
  SimDuration csv_interval = SimDuration::from_seconds(1);

  /// When non-empty, shutdown writes a single merged, (start, end)-ordered
  /// v2 .bpstrace here containing every record received.
  std::string drain_path;
  /// Directory for per-stream spool files backing the drains (required when
  /// drain_path or drain_tenant_dir is set; created if missing; spools are
  /// deleted after a successful drain).
  std::string spool_dir;
  /// When non-empty, shutdown additionally writes one merged trace per
  /// tenant at <dir>/tenant-<name>.bpstrace (tenant ids are filename-safe
  /// by charset).
  std::string drain_tenant_dir;

  /// Sliding-window length for the live per-tenant metrics.
  SimDuration window = SimDuration::from_seconds(10);
  /// Block unit for byte-denominated outputs.
  Bytes block_size = kDefaultBlockSize;

  /// I/O worker threads servicing agent connections.
  std::size_t io_threads = 2;
  /// Tenant shard count for TenantShards.
  std::size_t shards = 8;

  /// When > 0, run() returns on its own once this many agent connections
  /// have been accepted and all of them have closed.
  std::uint64_t expect_agents = 0;

  /// External stop flag (e.g. set by a SIGTERM handler); polled every loop
  /// iteration. May be null.
  const std::atomic<bool>* stop = nullptr;
};

class CollectorServer {
 public:
  explicit CollectorServer(CollectorOptions options);
  ~CollectorServer();

  CollectorServer(const CollectorServer&) = delete;
  CollectorServer& operator=(const CollectorServer&) = delete;

  /// Bind the listeners, write the port files, create the spool directory.
  /// Call once before run().
  Status start();

  /// Serve until the stop flag is raised or expect_agents is satisfied,
  /// then close remaining connections, join the workers, and — when
  /// configured — drain.
  Status run();

  /// The bound HTTP port (valid after start() when http_port >= 0).
  int http_port() const { return bound_http_port_; }
  /// The bound TCP ingest port (valid after start() when tcp_port >= 0).
  int tcp_port() const { return bound_tcp_port_; }

  const TenantShards& shards() const { return shards_; }
  CollectorTransport transport() const;

 private:
  struct Spool {
    std::unique_ptr<trace::SpillWriter> writer;
    std::string path;
  };

  struct AgentConn {
    int fd = -1;
    std::uint64_t conn_id = 0;
    trace::FrameDecoder decoder;
    TenantShards::Tenant* tenant = nullptr;
    std::uint64_t frames_counted = 0;
    std::map<std::uint64_t, Spool> spools;  ///< origin stream id -> spool
  };

  /// One I/O worker thread's world. The worker thread owns conns/conn_fds
  /// exclusively; only the inbox crosses threads.
  struct Worker {
    Mutex inbox_mu;
    std::vector<std::pair<int, std::uint64_t>> inbox  // (fd, conn id)
        BPSIO_GUARDED_BY(inbox_mu);
    std::atomic<bool> finish{false};
    std::vector<AgentConn> conns;
    std::vector<int> conn_fds;  ///< index-aligned with conns
    std::thread thread;
  };

  struct SpoolRecord {
    std::string path;
    std::string tenant;
  };

  void run_worker(Worker& worker);
  void adopt_inbox(Worker& worker);
  /// Returns false when the connection is finished (EOF or error) and has
  /// been closed.
  bool service_agent(AgentConn& conn);
  void close_agent(AgentConn& conn, bool record_loss_ok);
  void accept_agents(int listener_fd);
  void accept_http();
  std::string spool_path(std::uint64_t conn_id, std::uint64_t stream_id) const;
  std::string metrics_body();
  void write_csv_snapshot();
  Status drain();

  CollectorOptions options_;
  TenantShards shards_;
  int listen_fd_ = -1;
  int tcp_fd_ = -1;
  int http_fd_ = -1;
  int bound_tcp_port_ = -1;
  int bound_http_port_ = -1;
  bool spooling_ = false;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint64_t conn_serial_ = 0;  ///< main thread only (accept path)
  std::atomic<std::uint64_t> agents_connected_total_{0};
  std::atomic<std::uint64_t> agents_active_{0};
  std::atomic<std::uint64_t> frames_total_{0};
  std::atomic<std::uint64_t> bad_frames_total_{0};
  std::atomic<std::uint64_t> streams_total_{0};
  std::atomic<bool> spool_error_{false};
  Mutex spool_mu_;
  std::vector<SpoolRecord> closed_spools_ BPSIO_GUARDED_BY(spool_mu_);
  std::int64_t last_csv_ns_ = 0;
  bool started_ = false;
};

}  // namespace bpsio::collector
