// Clang thread-safety annotation shim.
//
// These macros expand to clang's capability-analysis attributes when the
// compiler supports them and to nothing otherwise (GCC, MSVC). Annotated code
// gets a compile-time race detector: building with clang and
// `-Wthread-safety` (added automatically by CMake for clang, promoted to an
// error) proves that every access to a GUARDED_BY field happens with its
// mutex held. This complements the runtime TSan CI job — TSan only sees races
// the tests actually execute; the analysis covers every path that compiles.
//
// Use with the annotated wrappers in common/mutex.hpp (std::mutex itself
// carries no capability attributes, so it is invisible to the analysis).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define BPSIO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BPSIO_THREAD_ANNOTATION
#define BPSIO_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// A type that represents a lockable resource (a "capability").
#define BPSIO_CAPABILITY(x) BPSIO_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires a capability in its constructor and releases it
/// in its destructor.
#define BPSIO_SCOPED_CAPABILITY BPSIO_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define BPSIO_GUARDED_BY(x) BPSIO_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is protected by the given mutex.
#define BPSIO_PT_GUARDED_BY(x) BPSIO_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called with the given capabilities held.
#define BPSIO_REQUIRES(...) \
  BPSIO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires / releases the given capability.
#define BPSIO_ACQUIRE(...) \
  BPSIO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BPSIO_RELEASE(...) \
  BPSIO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BPSIO_TRY_ACQUIRE(...) \
  BPSIO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must be called *without* the given capabilities held
/// (deadlock prevention for non-reentrant locks).
#define BPSIO_EXCLUDES(...) BPSIO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the given capability.
#define BPSIO_RETURN_CAPABILITY(x) BPSIO_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: function body is excluded from the analysis. Every use must
/// carry a comment stating the manual synchronization contract.
#define BPSIO_NO_THREAD_SAFETY_ANALYSIS \
  BPSIO_THREAD_ANNOTATION(no_thread_safety_analysis)
