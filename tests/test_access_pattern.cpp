#include <gtest/gtest.h>

#include "workload/access_pattern.hpp"

namespace bpsio::workload {
namespace {

TEST(SequentialOps, CoversFileExactlyOnce) {
  const auto ops = sequential_ops(AppOp::Kind::read, 100, 32);
  ASSERT_EQ(ops.size(), 4u);
  Bytes expect = 0;
  for (const auto& op : ops) {
    EXPECT_EQ(op.offset, expect);
    expect += op.size;
  }
  EXPECT_EQ(expect, 100u);
  EXPECT_EQ(ops.back().size, 4u);  // clipped tail
  EXPECT_EQ(ops_bytes(ops), 100u);
}

TEST(SequentialOps, DegenerateInputs) {
  EXPECT_TRUE(sequential_ops(AppOp::Kind::read, 0, 32).empty());
  EXPECT_TRUE(sequential_ops(AppOp::Kind::read, 100, 0).empty());
}

TEST(RandomOps, AlignedAndInBounds) {
  Rng rng(3);
  const auto ops = random_ops(AppOp::Kind::read, 1000, 100, 50, rng);
  ASSERT_EQ(ops.size(), 50u);
  for (const auto& op : ops) {
    EXPECT_EQ(op.offset % 100, 0u);
    EXPECT_LE(op.offset + op.size, 1000u);
    EXPECT_EQ(op.size, 100u);
  }
}

TEST(RandomOps, FileSmallerThanRecordYieldsNothing) {
  Rng rng(3);
  EXPECT_TRUE(random_ops(AppOp::Kind::read, 50, 100, 10, rng).empty());
}

TEST(StridedOps, OffsetsFollowStride) {
  const auto ops = strided_ops(AppOp::Kind::write, 1000, 500, 100, 4);
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[0].offset, 1000u);
  EXPECT_EQ(ops[3].offset, 2500u);
  for (const auto& op : ops) EXPECT_EQ(op.kind, AppOp::Kind::write);
}

TEST(HpioOps, ContiguousBlockPartition) {
  // 12 regions over 3 ranks: rank r owns regions [4r, 4r+4).
  for (std::uint32_t rank = 0; rank < 3; ++rank) {
    const auto ops = hpio_ops(AppOp::Kind::list_read, rank, 3, 12, 256, 8,
                              /*regions_per_call=*/0);
    ASSERT_EQ(ops.size(), 1u);
    ASSERT_EQ(ops[0].regions.size(), 4u);
    EXPECT_EQ(ops[0].regions.front().offset, rank * 4 * 264u);
    for (const auto& r : ops[0].regions) EXPECT_EQ(r.length, 256u);
  }
}

TEST(HpioOps, InterleavedPartition) {
  const auto ops = hpio_ops(AppOp::Kind::list_read, 1, 3, 9, 256, 8, 0,
                            /*interleaved=*/true);
  ASSERT_EQ(ops.size(), 1u);
  ASSERT_EQ(ops[0].regions.size(), 3u);
  EXPECT_EQ(ops[0].regions[0].offset, 1u * 264);
  EXPECT_EQ(ops[0].regions[1].offset, 4u * 264);
  EXPECT_EQ(ops[0].regions[2].offset, 7u * 264);
}

TEST(HpioOps, ChunkedIntoCalls) {
  const auto ops = hpio_ops(AppOp::Kind::list_read, 0, 1, 100, 256, 8, 30);
  ASSERT_EQ(ops.size(), 4u);  // 30+30+30+10
  EXPECT_EQ(ops[0].regions.size(), 30u);
  EXPECT_EQ(ops[3].regions.size(), 10u);
  Bytes total = 0;
  for (const auto& op : ops) total += mio::regions_bytes(op.regions);
  EXPECT_EQ(total, 100u * 256);
}

TEST(HpioOps, RanksPartitionAllRegionsExactly) {
  // Union over ranks covers every region exactly once (last rank absorbs
  // the remainder).
  const std::uint64_t count = 103;
  const std::uint32_t nprocs = 4;
  std::vector<bool> seen(count, false);
  for (std::uint32_t rank = 0; rank < nprocs; ++rank) {
    for (const auto& op :
         hpio_ops(AppOp::Kind::list_read, rank, nprocs, count, 256, 8, 0)) {
      for (const auto& r : op.regions) {
        const auto idx = r.offset / 264;
        ASSERT_LT(idx, count);
        ASSERT_FALSE(seen[idx]);
        seen[idx] = true;
      }
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace bpsio::workload
