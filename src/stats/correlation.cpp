#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace bpsio::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / (std::sqrt(sxx) * std::sqrt(syy));
}

std::vector<double> ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> out(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average rank for the tie group [i, j], 1-based.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg;
    i = j + 1;
  }
  return out;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const auto rx = ranks(x.first(n));
  const auto ry = ranks(y.first(n));
  return pearson(rx, ry);
}

double least_squares_slope(std::span<const double> x,
                           std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  return sxx > 0.0 ? sxy / sxx : 0.0;
}

namespace {

/// Inverse standard-normal CDF (Acklam's rational approximation, |err|<1e-8).
double inverse_normal_cdf(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace

CcInterval cc_confidence_interval(double cc, std::size_t n, double confidence) {
  if (n < 4 || std::fabs(cc) >= 1.0) return {cc, cc};
  const double z = std::atanh(cc);
  const double se = 1.0 / std::sqrt(static_cast<double>(n - 3));
  const double zcrit = inverse_normal_cdf(0.5 + confidence / 2.0);
  return {std::tanh(z - zcrit * se), std::tanh(z + zcrit * se)};
}

double normalize_cc(double cc, Direction expected) {
  const double magnitude = std::fabs(cc);
  const bool is_negative = cc < 0.0;
  const bool expect_negative = expected == Direction::negative;
  return is_negative == expect_negative ? magnitude : -magnitude;
}

}  // namespace bpsio::stats
