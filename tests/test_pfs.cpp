#include <gtest/gtest.h>

#include "pfs/cluster.hpp"
#include "pfs/pfs_client.hpp"
#include "sim/simulator.hpp"

namespace bpsio::pfs {
namespace {

PfsClusterParams ram_cluster(std::uint32_t servers) {
  PfsClusterParams p;
  p.server_count = servers;
  p.device = DeviceKind::ram;
  p.ram.capacity = 64 * kMiB;
  return p;
}

struct Fixture {
  sim::Simulator sim;
  PfsCluster cluster;
  PfsClient& client;

  explicit Fixture(PfsClusterParams params)
      : cluster(sim, std::move(params)), client(cluster.make_client("c0")) {}

  fs::IoOutcome read(fs::FileHandle h, Bytes off, Bytes size,
                     PfsClient* c = nullptr) {
    fs::IoOutcome out{false, 0};
    (c ? *c : client).read(h, off, size, [&](fs::IoOutcome o) { out = o; });
    sim.run();
    return out;
  }
  fs::IoOutcome write(fs::FileHandle h, Bytes off, Bytes size) {
    fs::IoOutcome out{false, 0};
    client.write(h, off, size, [&](fs::IoOutcome o) { out = o; });
    sim.run();
    return out;
  }
};

TEST(Pfs, CreateMakesOneObjectPerServer) {
  Fixture f(ram_cluster(4));
  auto h = f.client.create("/file", 1 * kMiB);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(f.cluster.metadata().file_count(), 1u);
  EXPECT_EQ(f.client.size_of(*h).value(), kMiB);
  EXPECT_EQ(f.client.create("/file", 1).code(), Errc::already_exists);
}

TEST(Pfs, ReadWriteRoundTripSizes) {
  Fixture f(ram_cluster(4));
  auto h = f.client.create("/file", 1 * kMiB);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(f.read(*h, 0, 256 * kKiB).bytes, 256u * kKiB);
  EXPECT_EQ(f.read(*h, kMiB - 1000, 5000).bytes, 1000u);  // clip at EOF
  EXPECT_EQ(f.read(*h, 2 * kMiB, 10).bytes, 0u);
  EXPECT_EQ(f.write(*h, kMiB, 64 * kKiB).bytes, 64u * kKiB);  // extend
  EXPECT_EQ(f.client.size_of(*h).value(), kMiB + 64 * kKiB);
}

TEST(Pfs, MovedBytesCountClientTraffic) {
  Fixture f(ram_cluster(2));
  auto h = f.client.create("/file", 1 * kMiB);
  f.read(*h, 0, 512 * kKiB);
  EXPECT_EQ(f.client.bytes_moved(), 512u * kKiB);
  EXPECT_EQ(f.cluster.client_bytes_moved(), 512u * kKiB);
  f.cluster.reset_counters();
  EXPECT_EQ(f.client.bytes_moved(), 0u);
}

TEST(Pfs, StripingSpreadsBytesAcrossServers) {
  Fixture f(ram_cluster(4));
  auto h = f.client.create("/file", 4 * kMiB);
  f.read(*h, 0, 4 * kMiB);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(f.cluster.server(s).device().stats().bytes_read, kMiB)
        << "server " << s;
  }
}

TEST(Pfs, SingleServerLayoutPinsFile) {
  Fixture f(ram_cluster(4));
  StripeLayout pin;
  pin.stripe_size = 64 * kKiB;
  pin.servers = {2};
  f.client.set_create_layout(pin);
  auto h = f.client.create("/pinned", 1 * kMiB);
  ASSERT_TRUE(h.ok());
  f.read(*h, 0, 1 * kMiB);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(f.cluster.server(s).device().stats().bytes_read,
              s == 2 ? kMiB : 0u);
  }
}

TEST(Pfs, LayoutPolicyOverridesCreateLayout) {
  Fixture f(ram_cluster(4));
  f.client.set_layout_policy([](const std::string& path) {
    StripeLayout l;
    l.stripe_size = 64 * kKiB;
    l.servers = {path == "/a" ? 0u : 3u};
    return l;
  });
  auto a = f.client.create("/a", 64 * kKiB);
  auto b = f.client.create("/b", 64 * kKiB);
  f.read(*a, 0, 64 * kKiB);
  f.read(*b, 0, 64 * kKiB);
  EXPECT_EQ(f.cluster.server(0).device().stats().bytes_read, 64u * kKiB);
  EXPECT_EQ(f.cluster.server(3).device().stats().bytes_read, 64u * kKiB);
}

TEST(Pfs, InvalidLayoutServerRejected) {
  Fixture f(ram_cluster(2));
  StripeLayout bad;
  bad.stripe_size = 64 * kKiB;
  bad.servers = {7};
  f.client.set_create_layout(bad);
  EXPECT_EQ(f.client.create("/x", 1000).code(), Errc::invalid_argument);
}

TEST(Pfs, SharedNamespaceAcrossClients) {
  Fixture f(ram_cluster(2));
  PfsClient& other = f.cluster.make_client("c1");
  auto h = f.client.create("/shared", 128 * kKiB);
  ASSERT_TRUE(h.ok());
  auto h2 = other.open("/shared");
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(f.read(*h2, 0, 128 * kKiB, &other).bytes, 128u * kKiB);
  EXPECT_EQ(other.bytes_moved(), 128u * kKiB);
  EXPECT_EQ(f.client.bytes_moved(), 0u);
}

TEST(Pfs, RemoveDeletesObjectsAndMetadata) {
  Fixture f(ram_cluster(2));
  ASSERT_TRUE(f.client.create("/gone", 128 * kKiB).ok());
  ASSERT_TRUE(f.client.remove("/gone").ok());
  EXPECT_EQ(f.cluster.metadata().file_count(), 0u);
  EXPECT_EQ(f.client.open("/gone").code(), Errc::not_found);
  // Server-side objects are gone too: space is reusable.
  EXPECT_TRUE(f.client.create("/gone", 128 * kKiB).ok());
}

TEST(Pfs, ParallelServersBeatSingleServer) {
  // Same data volume through 1 vs 8 HDD servers: striping must win.
  auto run_with = [](std::uint32_t servers) {
    PfsClusterParams p;
    p.server_count = servers;
    p.device = DeviceKind::hdd;
    p.hdd.capacity = 8 * kGiB;
    sim::Simulator sim;
    PfsCluster cluster(sim, p);
    PfsClient& client = cluster.make_client("c");
    auto h = client.create("/f", 16 * kMiB);
    bool done = false;
    client.read(*h, 0, 16 * kMiB, [&](fs::IoOutcome) { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    return sim.now().seconds();
  };
  const double t1 = run_with(1);
  const double t8 = run_with(8);
  EXPECT_LT(t8, t1);
  EXPECT_GT(t1 / t8, 1.5);  // meaningful parallel speedup
}

TEST(Pfs, DropAllCachesForcesServerRefetch) {
  PfsClusterParams p = ram_cluster(2);
  p.server_fs.cache_capacity = 32 * kMiB;
  Fixture f(p);
  auto h = f.client.create("/file", 1 * kMiB);
  f.read(*h, 0, 1 * kMiB);
  const Bytes dev_first = f.cluster.device_bytes_moved();
  f.read(*h, 0, 1 * kMiB);
  EXPECT_EQ(f.cluster.device_bytes_moved(), dev_first);  // server cache hit
  f.cluster.drop_all_caches();
  f.read(*h, 0, 1 * kMiB);
  EXPECT_EQ(f.cluster.device_bytes_moved(), 2 * dev_first);
}

TEST(Pfs, ConcurrentSharedWritesFromTwoClients) {
  Fixture f(ram_cluster(4));
  PfsClient& other = f.cluster.make_client("c1");
  auto h1 = f.client.create("/shared", 0);
  ASSERT_TRUE(h1.ok());
  auto h2 = other.open("/shared");
  ASSERT_TRUE(h2.ok());
  int done = 0;
  // Disjoint halves written concurrently; both extend the file.
  f.client.write(*h1, 0, 512 * kKiB, [&](fs::IoOutcome o) { done += o.ok; });
  other.write(*h2, 512 * kKiB, 512 * kKiB,
              [&](fs::IoOutcome o) { done += o.ok; });
  f.sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(f.client.size_of(*h1).value(), 1u * kMiB);
  EXPECT_EQ(f.cluster.client_bytes_moved(), 1u * kMiB);
  // Both clients can read the whole file back.
  EXPECT_EQ(f.read(*h2, 0, 1 * kMiB, &other).bytes, 1u * kMiB);
}

TEST(Pfs, FlushCompletes) {
  Fixture f(ram_cluster(2));
  auto h = f.client.create("/file", 0);
  f.write(*h, 0, 256 * kKiB);
  bool flushed = false;
  f.client.flush([&]() { flushed = true; });
  f.sim.run();
  EXPECT_TRUE(flushed);
}

}  // namespace
}  // namespace bpsio::pfs
