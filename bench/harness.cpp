#include "bench/harness.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <utility>

#include "common/check.hpp"
#include "common/wallclock.hpp"

namespace bpsio::bench {

namespace {

std::string resolved_git_sha() {
  for (const char* var : {"BPSIO_GIT_SHA", "GITHUB_SHA"}) {
    if (const char* sha = std::getenv(var); sha != nullptr && sha[0] != '\0') {
      return sha;
    }
  }
  return "unknown";
}

}  // namespace

BenchHarness::BenchHarness(HarnessConfig config, ClockFn clock)
    : config_(std::move(config)), clock_(std::move(clock)) {
  BPSIO_CHECK(config_.min_samples >= 4, "need at least 4 samples for a CI");
  BPSIO_CHECK(config_.max_samples >= config_.min_samples,
              "max_samples < min_samples");
  BPSIO_CHECK(config_.simulate_slowdown > 0, "slowdown factor must be > 0");
  if (!clock_) clock_ = [] { return monotonic_ns(); };
}

BenchResult BenchHarness::run(const std::function<double()>& op) const {
  BenchResult result;
  result.samples.reserve(config_.max_samples);

  const auto take_sample = [&] {
    const std::int64_t t0 = clock_();
    const double units = op();
    const std::int64_t t1 = clock_();
    double elapsed_ns =
        static_cast<double>(t1 - t0) * config_.simulate_slowdown;
    if (elapsed_ns <= 0) elapsed_ns = 1;
    result.samples.push_back(units * 1e9 / elapsed_ns);
  };

  for (std::size_t i = 0; i < config_.min_samples; ++i) take_sample();

  while (true) {
    result.warmup_discarded =
        stats::detect_warmup(result.samples, config_.warmup_max_fraction);
    const std::span<const double> kept(
        result.samples.data() + result.warmup_discarded,
        result.samples.size() - result.warmup_discarded);
    result.est = stats::estimate(kept, config_.confidence);
    if (kept.size() >= 4 &&
        result.est.rel_half_width() <= config_.target_rel_half_width) {
      result.converged = true;
      break;
    }
    if (result.samples.size() >= config_.max_samples) {
      result.converged = false;
      break;
    }
    take_sample();
  }
  result.samples_collected = result.samples.size();
  return result;
}

BenchRecord BenchResult::to_record(
    const HarnessConfig& cfg, std::map<std::string, std::string> extra) const {
  BenchRecord r;
  r.name = cfg.name;
  r.unit = cfg.unit;
  r.git_sha = resolved_git_sha();
  r.seed = cfg.seed;
  r.threads = cfg.threads;
  r.confidence = cfg.confidence;
  r.target_rel_half_width = cfg.target_rel_half_width;
  r.converged = converged;
  r.samples_collected = samples_collected;
  r.warmup_discarded = warmup_discarded;
  r.samples_used = est.count;
  r.mean = est.mean;
  r.stddev = est.stddev;
  r.ci_lo = est.ci_lo;
  r.ci_hi = est.ci_hi;
  r.rel_half_width = est.rel_half_width();
  r.lag1_autocorr = est.lag1;
  r.ess = est.ess;
  r.config = std::move(extra);
  if (cfg.simulate_slowdown != 1.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", cfg.simulate_slowdown);
    r.config["simulate_slowdown"] = buf;
  }
  r.samples_raw.assign(samples.begin() + static_cast<std::ptrdiff_t>(warmup_discarded),
                       samples.end());
  return r;
}

std::string summary_line(const BenchRecord& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-28s %12.3g ±%.3g %s (%.0f%% CI, n=%llu/%llu, warmup=%llu, "
                "lag1=%.2f, ess=%.1f%s)",
                r.name.c_str(), r.mean, r.ci_hi - r.mean, r.unit.c_str(),
                r.confidence * 100.0,
                static_cast<unsigned long long>(r.samples_used),
                static_cast<unsigned long long>(r.samples_collected),
                static_cast<unsigned long long>(r.warmup_discarded),
                r.lag1_autocorr, r.ess,
                r.converged ? "" : ", NOT CONVERGED");
  return buf;
}

}  // namespace bpsio::bench
