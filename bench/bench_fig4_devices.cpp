// Figure 4 — Set 1: IOzone sequential read on various storage device
// configurations (local HDD, local SSD, PVFS2-like with 1..8 servers).
#include "figure_bench.hpp"

int main(int argc, char** argv) {
  return bpsio::bench::run_figure_main(
      "Figure 4: CC values, various storage devices",
      "all four metrics correct, strong (|CC| ~0.93)",
      bpsio::core::figures::fig4_devices, argc, argv);
}
