// Determinism regression for the concurrent sweep runner: a CC-study sweep
// run serially and on a 4-wide pool must agree bit-for-bit — per-point
// metrics, correlation coefficients, and seed-stability ranges. Each sweep
// point is an independent Simulator with its own per-run seed; the pool only
// changes *where* a run executes, never *what* it computes.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/testbed.hpp"
#include "workload/registry.hpp"

namespace bpsio::core {
namespace {

RunSpec tiny_spec(const char* label, std::uint32_t procs) {
  RunSpec spec;
  spec.label = label;
  spec.testbed = [](std::uint64_t seed) {
    TestbedConfig cfg;
    cfg.backend = BackendKind::pfs;
    cfg.pfs.server_count = 2;
    cfg.pfs.device = pfs::DeviceKind::ram;
    cfg.pfs.ram.capacity = 256 * kMiB;
    cfg.client_nodes = 1;
    cfg.seed = seed;
    return cfg;
  };
  spec.workload = [procs]() -> std::unique_ptr<workload::Workload> {
    workload::IozoneConfig cfg;
    cfg.file_size = 2 * kMiB;
    cfg.record_size = 64 * kKiB;
    cfg.processes = procs;
    return workload::make_workload(cfg);
  };
  return spec;
}

void expect_bit_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const auto& s = a.samples[i];
    const auto& p = b.samples[i];
    // Exact equality on doubles is the point: same inputs, same order of
    // floating-point operations, same bits.
    EXPECT_EQ(s.exec_time_s, p.exec_time_s) << "point " << i;
    EXPECT_EQ(s.iops, p.iops) << "point " << i;
    EXPECT_EQ(s.bandwidth_bps, p.bandwidth_bps) << "point " << i;
    EXPECT_EQ(s.arpt_s, p.arpt_s) << "point " << i;
    EXPECT_EQ(s.bps, p.bps) << "point " << i;
    EXPECT_EQ(s.io_time_s, p.io_time_s) << "point " << i;
    EXPECT_EQ(s.access_count, p.access_count) << "point " << i;
    EXPECT_EQ(s.app_blocks, p.app_blocks) << "point " << i;
    EXPECT_EQ(s.moved_bytes, p.moved_bytes) << "point " << i;
  }
  ASSERT_EQ(a.report.metrics.size(), b.report.metrics.size());
  for (metrics::MetricKind kind : metrics::kAllMetrics) {
    EXPECT_EQ(a.report.of(kind).cc, b.report.of(kind).cc);
    EXPECT_EQ(a.report.of(kind).normalized_cc, b.report.of(kind).normalized_cc);
    EXPECT_EQ(a.report.of(kind).spearman, b.report.of(kind).spearman);
    EXPECT_EQ(a.report.of(kind).direction_correct,
              b.report.of(kind).direction_correct);
  }
  ASSERT_EQ(a.stability.size(), b.stability.size());
  for (std::size_t i = 0; i < a.stability.size(); ++i) {
    EXPECT_EQ(a.stability[i].min_normalized_cc, b.stability[i].min_normalized_cc);
    EXPECT_EQ(a.stability[i].max_normalized_cc, b.stability[i].max_normalized_cc);
    EXPECT_EQ(a.stability[i].direction_stable, b.stability[i].direction_stable);
  }
}

TEST(ParallelSweep, ConcurrentRunnerIsBitIdenticalToSerial) {
  const std::vector<RunSpec> specs{tiny_spec("p1", 1), tiny_spec("p2", 2),
                                   tiny_spec("p4", 4)};
  SweepOptions serial;
  serial.repeats = 3;
  serial.base_seed = 7;

  SweepOptions concurrent = serial;
  concurrent.threads = 4;

  const auto a = run_sweep(specs, serial);
  const auto b = run_sweep(specs, concurrent);
  expect_bit_identical(a, b);
  // And the pool width itself must not matter.
  SweepOptions wide = serial;
  wide.threads = 7;
  expect_bit_identical(a, run_sweep(specs, wide));
}

TEST(ParallelSweep, RepeatedConcurrentRunsAgree) {
  const std::vector<RunSpec> specs{tiny_spec("p1", 1), tiny_spec("p2", 2)};
  SweepOptions opt;
  opt.repeats = 2;
  opt.base_seed = 11;
  opt.threads = 4;
  expect_bit_identical(run_sweep(specs, opt), run_sweep(specs, opt));
}

TEST(ParallelSweep, FigureRunnerRoutesThreads) {
  // run_figure with threads set must reproduce the serial figure exactly.
  figures::FigureDefaults d;
  d.scale = 0.25;
  d.repeats = 2;
  figures::FigureDefaults dp = d;
  dp.threads = 4;
  const auto specs = figures::fig9_concurrency_pure(d);
  expect_bit_identical(figures::run_figure(specs, d),
                       figures::run_figure(specs, dp));
}

TEST(ParallelSweep, ProgressCallbackCoversEveryPointExactlyOnce) {
  const std::vector<RunSpec> specs{tiny_spec("p1", 1), tiny_spec("p2", 2)};
  SweepOptions opt;
  opt.repeats = 3;
  opt.base_seed = 5;
  opt.threads = 4;
  // The callback is serialized by the runner's mutex, so plain (non-atomic)
  // state is safe to mutate here even on a 4-wide pool.
  std::vector<std::size_t> completions;
  std::size_t reported_total = 0;
  opt.progress = [&](std::size_t completed, std::size_t total) {
    completions.push_back(completed);
    reported_total = total;
  };
  const auto result = run_sweep(specs, opt);
  const std::size_t points = specs.size() * opt.repeats;
  EXPECT_EQ(reported_total, points);
  ASSERT_EQ(completions.size(), points);
  // Completed counts are strictly increasing 1..N regardless of which
  // worker finishes which point.
  for (std::size_t i = 0; i < completions.size(); ++i) {
    EXPECT_EQ(completions[i], i + 1);
  }
  EXPECT_EQ(result.samples.size(), specs.size());
}

TEST(ParallelSweep, DefaultOptionsMatchExplicitSerial) {
  const std::vector<RunSpec> specs{tiny_spec("p1", 1), tiny_spec("p2", 2)};
  SweepOptions opt;
  opt.repeats = 2;
  opt.base_seed = 42;
  SweepOptions serial = opt;
  serial.threads = 1;
  expect_bit_identical(run_sweep(specs, serial), run_sweep(specs, opt));
}

}  // namespace
}  // namespace bpsio::core
