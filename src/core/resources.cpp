#include "core/resources.hpp"

#include <algorithm>

#include "common/format.hpp"

namespace bpsio::core {

namespace {

ResourceUsage from_center(std::string name, const sim::ServiceCenter& center,
                          SimDuration exec) {
  ResourceUsage u;
  u.name = std::move(name);
  u.busy_s = center.busy_time().seconds();
  u.slots = center.slots();
  const double denom = exec.seconds() * u.slots;
  u.utilization = denom > 0 ? u.busy_s / denom : 0.0;
  return u;
}

ResourceUsage from_device(std::string name, const device::BlockDevice& dev,
                          SimDuration exec) {
  ResourceUsage u;
  u.name = std::move(name);
  u.busy_s = dev.stats().busy_time.seconds();
  u.slots = 1;
  u.utilization = exec.seconds() > 0 ? u.busy_s / exec.seconds() : 0.0;
  return u;
}

}  // namespace

std::vector<ResourceUsage> resource_usage(Testbed& testbed, SimDuration exec) {
  std::vector<ResourceUsage> out;

  for (std::size_t i = 0; i < testbed.env().node_count(); ++i) {
    out.push_back(from_center("client" + std::to_string(i) + ".cpu",
                              testbed.env().nodes[i]->cpu(), exec));
  }

  if (auto* local = testbed.local_fs()) {
    out.push_back(from_device("disk", local->device(), exec));
    return out;
  }

  if (auto* cluster = testbed.cluster()) {
    for (std::uint32_t s = 0; s < cluster->server_count(); ++s) {
      auto& server = cluster->server(s);
      const std::string prefix = "server" + std::to_string(s);
      out.push_back(from_device(prefix + ".disk", server.device(), exec));
      out.push_back(from_center(prefix + ".cpu", server.cpu(), exec));
      out.push_back(from_center(prefix + ".nic.tx", server.nic().tx(), exec));
      out.push_back(from_center(prefix + ".nic.rx", server.nic().rx(), exec));
    }
    for (std::size_t c = 0; c < cluster->clients().size(); ++c) {
      auto& client = *cluster->clients()[c];
      const std::string prefix = "client" + std::to_string(c);
      out.push_back(from_center(prefix + ".nic.rx", client.nic().rx(), exec));
      out.push_back(from_center(prefix + ".nic.tx", client.nic().tx(), exec));
    }
    if (const auto* fabric = cluster->network().fabric()) {
      out.push_back(from_center("fabric", *fabric, exec));
    }
  }
  return out;
}

ResourceUsage bottleneck(const std::vector<ResourceUsage>& usage) {
  ResourceUsage best;
  for (const auto& u : usage) {
    if (u.utilization > best.utilization) best = u;
  }
  return best;
}

std::string usage_table(std::vector<ResourceUsage> usage, std::size_t top_n) {
  std::sort(usage.begin(), usage.end(),
            [](const ResourceUsage& a, const ResourceUsage& b) {
              return a.utilization > b.utilization;
            });
  if (usage.size() > top_n) usage.resize(top_n);
  TextTable t({"resource", "busy (s)", "slots", "utilization"});
  for (const auto& u : usage) {
    t.add_row({u.name, fmt_double(u.busy_s, 3), std::to_string(u.slots),
               fmt_double(u.utilization * 100.0, 1) + "%"});
  }
  return t.to_string();
}

}  // namespace bpsio::core
