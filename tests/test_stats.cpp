#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"

namespace bpsio::stats {
namespace {

TEST(RunningStats, EmptyIsZeroes) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
}

TEST(Percentile, InterpolatesOrderStatistics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 10), 1.4);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
}

TEST(Means, KnownValues) {
  const std::vector<double> v{1.0, 2.0, 4.0};
  EXPECT_NEAR(arithmetic_mean(v), 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(geometric_mean(v), 2.0, 1e-12);
  EXPECT_NEAR(harmonic_mean(v), 3.0 / 1.75, 1e-12);
  EXPECT_DOUBLE_EQ(arithmetic_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean({2.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_mean({2.0, 0.0}), 0.0);
}

TEST(LogHistogram, CountsAndQuantiles) {
  LogHistogram h(1e-6, 1.0, 2.0);
  for (int i = 0; i < 100; ++i) h.add(1e-3);
  for (int i = 0; i < 100; ++i) h.add(1e-2);
  EXPECT_EQ(h.count(), 200u);
  const double q25 = h.quantile(0.25);
  const double q75 = h.quantile(0.75);
  EXPECT_LT(q25, q75);
  EXPECT_NEAR(q25, 1e-3, 1e-3);
  EXPECT_NEAR(q75, 1e-2, 1e-2);
}

TEST(LogHistogram, UnderAndOverflowBuckets) {
  LogHistogram h(1.0, 8.0);
  h.add(0.1);    // underflow
  h.add(100.0);  // overflow
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_value(0), 1u);
  EXPECT_EQ(h.bucket_value(h.bucket_count() - 1), 1u);
}

}  // namespace
}  // namespace bpsio::stats
