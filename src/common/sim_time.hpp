// Simulated-time representation for the discrete-event engine and traces.
//
// Time is an integer count of nanoseconds since simulation start. Integer
// ticks keep the simulator deterministic (no floating-point drift in event
// ordering) while one nanosecond is fine enough to resolve every latency the
// device models produce (the fastest modeled operation is ~1 microsecond).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace bpsio {

class SimDuration;

/// A point on the simulation timeline, in nanoseconds since t=0.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9));
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime& operator+=(SimDuration d);
  constexpr SimTime& operator-=(SimDuration d);

  /// "12.345678s"-style rendering for logs and reports.
  std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

/// A length of simulated time, in nanoseconds.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t ns) : ns_(ns) {}

  static constexpr SimDuration zero() { return SimDuration(0); }
  static constexpr SimDuration from_ns(double ns) {
    return SimDuration(static_cast<std::int64_t>(ns));
  }
  static constexpr SimDuration from_us(double us) {
    return SimDuration(static_cast<std::int64_t>(us * 1e3));
  }
  static constexpr SimDuration from_ms(double ms) {
    return SimDuration(static_cast<std::int64_t>(ms * 1e6));
  }
  static constexpr SimDuration from_seconds(double s) {
    return SimDuration(static_cast<std::int64_t>(s * 1e9));
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) * 1e-3; }
  constexpr double ms() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr auto operator<=>(SimDuration, SimDuration) = default;

  constexpr SimDuration& operator+=(SimDuration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration o) {
    ns_ -= o.ns_;
    return *this;
  }

  std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

constexpr SimDuration operator+(SimDuration a, SimDuration b) {
  return SimDuration(a.ns() + b.ns());
}
constexpr SimDuration operator-(SimDuration a, SimDuration b) {
  return SimDuration(a.ns() - b.ns());
}
constexpr SimDuration operator*(SimDuration a, std::int64_t k) {
  return SimDuration(a.ns() * k);
}
constexpr SimDuration operator*(std::int64_t k, SimDuration a) { return a * k; }

constexpr SimTime operator+(SimTime t, SimDuration d) {
  return SimTime(t.ns() + d.ns());
}
constexpr SimTime operator+(SimDuration d, SimTime t) { return t + d; }
constexpr SimTime operator-(SimTime t, SimDuration d) {
  return SimTime(t.ns() - d.ns());
}
constexpr SimDuration operator-(SimTime a, SimTime b) {
  return SimDuration(a.ns() - b.ns());
}

constexpr SimTime& SimTime::operator+=(SimDuration d) {
  ns_ += d.ns();
  return *this;
}
constexpr SimTime& SimTime::operator-=(SimDuration d) {
  ns_ -= d.ns();
  return *this;
}

constexpr SimTime max(SimTime a, SimTime b) { return a < b ? b : a; }
constexpr SimTime min(SimTime a, SimTime b) { return a < b ? a : b; }
constexpr SimDuration max(SimDuration a, SimDuration b) { return a < b ? b : a; }

}  // namespace bpsio
