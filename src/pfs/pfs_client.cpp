#include "pfs/pfs_client.hpp"

#include <algorithm>
#include <memory>

#include "sim/sync.hpp"

namespace bpsio::pfs {

PfsClient::PfsClient(PfsCluster& cluster, std::string name)
    : cluster_(cluster),
      name_(std::move(name)),
      nic_(cluster.network().make_nic(name_)),
      create_layout_(cluster.default_layout()) {}

std::string PfsClient::describe() const {
  return "pfs(" + std::to_string(cluster_.server_count()) + " servers)";
}

Result<fs::FileHandle> PfsClient::create(const std::string& path,
                                         Bytes initial_size) {
  StripeLayout layout =
      layout_policy_ ? layout_policy_(path) : create_layout_;
  if (layout.servers.empty()) layout = cluster_.default_layout();
  for (const std::uint32_t srv : layout.servers) {
    if (srv >= cluster_.server_count()) {
      return Error{Errc::invalid_argument,
                   "layout names server " + std::to_string(srv)};
    }
  }
  auto meta = cluster_.metadata().create(path, layout);
  if (!meta) return meta.error();
  PfsFileMeta& m = **meta;
  m.size = initial_size;
  // One backing object per layout slot, sized for its share of the stripes.
  m.objects.reserve(m.layout.servers.size());
  for (std::uint32_t pos = 0; pos < m.layout.server_count(); ++pos) {
    const Bytes obj_size =
        std::max<Bytes>(server_object_size(m.layout, initial_size, pos), 1);
    auto obj = cluster_.server(m.layout.servers[pos])
                   .create_object("obj." + std::to_string(m.file_id) + "." +
                                      std::to_string(pos),
                                  obj_size);
    if (!obj) return obj.error();
    m.objects.push_back(*obj);
  }
  const fs::FileHandle h{next_handle_++};
  handles_[h.id] = &m;
  return h;
}

Result<fs::FileHandle> PfsClient::open(const std::string& path) {
  auto meta = cluster_.metadata().lookup(path);
  if (!meta) return meta.error();
  const fs::FileHandle h{next_handle_++};
  handles_[h.id] = *meta;
  return h;
}

PfsFileMeta* PfsClient::meta_of(fs::FileHandle h) const {
  const auto it = handles_.find(h.id);
  return it == handles_.end() ? nullptr : it->second;
}

Result<Bytes> PfsClient::size_of(fs::FileHandle h) const {
  const PfsFileMeta* m = meta_of(h);
  if (!m) return Error{Errc::not_found, "bad handle"};
  return m->size;
}

Status PfsClient::close(fs::FileHandle h) {
  return handles_.erase(h.id) ? Status{} : Status{Errc::not_found, "bad handle"};
}

Status PfsClient::remove(const std::string& path) {
  auto meta = cluster_.metadata().lookup(path);
  if (!meta) return Status{meta.error()};
  PfsFileMeta& m = **meta;
  for (std::uint32_t pos = 0; pos < m.layout.server_count(); ++pos) {
    (void)cluster_.server(m.layout.servers[pos])
        .filesystem()
        .remove("obj." + std::to_string(m.file_id) + "." + std::to_string(pos));
  }
  return cluster_.metadata().remove(path);
}

void PfsClient::do_runs(device::DevOp op, PfsFileMeta& meta,
                        std::vector<ServerRun> runs, Bytes total,
                        fs::IoDoneFn done) {
  auto& sim = cluster_.simulator();
  if (runs.empty()) {
    sim.schedule_now([done = std::move(done)]() { done({true, 0}); });
    return;
  }
  auto all_ok = std::make_shared<bool>(true);
  sim::fan_out(
      sim, runs.size(),
      [this, op, &meta, runs, all_ok](std::uint64_t i, sim::EventFn one_done) {
        const ServerRun run = runs[i];
        IoServer& server = cluster_.server(meta.layout.servers[run.server]);
        const fs::FileHandle object = meta.objects[run.server];
        if (op == device::DevOp::read) {
          // request -> server stage + local read -> data reply
          cluster_.network().message(*nic_, server.nic(), [this, &server,
                                                           object, run, all_ok,
                                                           one_done]() mutable {
            server.execute(
                device::DevOp::read, object, run.local_offset, run.length,
                [this, &server, run, all_ok, one_done](bool ok) mutable {
                  if (ok) {
                    moved_ += run.length;
                  } else {
                    *all_ok = false;
                  }
                  cluster_.network().transfer(server.nic(), *nic_, run.length,
                                              std::move(one_done));
                });
          });
        } else {
          // data -> server stage + local write -> ack
          cluster_.network().transfer(
              *nic_, server.nic(), run.length,
              [this, &server, object, run, all_ok, one_done]() mutable {
                server.execute(
                    device::DevOp::write, object, run.local_offset, run.length,
                    [this, &server, run, all_ok, one_done](bool ok) mutable {
                      if (ok) {
                        moved_ += run.length;
                      } else {
                        *all_ok = false;
                      }
                      cluster_.network().message(server.nic(), *nic_,
                                                 std::move(one_done));
                    });
              });
        }
      },
      [total, all_ok, done = std::move(done)]() {
        done({*all_ok, *all_ok ? total : 0});
      });
}

void PfsClient::read(fs::FileHandle h, Bytes offset, Bytes size,
                     fs::IoDoneFn done) {
  PfsFileMeta* m = meta_of(h);
  auto& sim = cluster_.simulator();
  if (!m) {
    sim.schedule_now([done = std::move(done)]() { done({false, 0}); });
    return;
  }
  if (offset >= m->size || size == 0) {
    sim.schedule_now([done = std::move(done)]() { done({true, 0}); });
    return;
  }
  const Bytes length = std::min(offset + size, m->size) - offset;
  do_runs(device::DevOp::read, *m, split_range(m->layout, offset, length),
          length, std::move(done));
}

void PfsClient::write(fs::FileHandle h, Bytes offset, Bytes size,
                      fs::IoDoneFn done) {
  PfsFileMeta* m = meta_of(h);
  auto& sim = cluster_.simulator();
  if (!m) {
    sim.schedule_now([done = std::move(done)]() { done({false, 0}); });
    return;
  }
  if (size == 0) {
    sim.schedule_now([done = std::move(done)]() { done({true, 0}); });
    return;
  }
  m->size = std::max(m->size, offset + size);
  do_runs(device::DevOp::write, *m, split_range(m->layout, offset, size), size,
          std::move(done));
}

void PfsClient::flush(fs::FlushDoneFn done) {
  auto& sim = cluster_.simulator();
  const std::uint32_t n = cluster_.server_count();
  sim::fan_out(
      sim, n,
      [this](std::uint64_t i, sim::EventFn one_done) {
        cluster_.server(static_cast<std::uint32_t>(i))
            .filesystem()
            .flush(std::move(one_done));
      },
      std::move(done));
}

void PfsClient::drop_caches() {
  for (std::uint32_t i = 0; i < cluster_.server_count(); ++i) {
    cluster_.server(i).filesystem().drop_caches();
  }
}

}  // namespace bpsio::pfs
