// bpsio — umbrella public header.
//
// #include <bpsio/bpsio.hpp> pulls the whole stable surface:
//
//   bpsio/trace.hpp     records, streaming sources, persistence, framing
//   bpsio/metrics.hpp   the BPS metric pipeline (batch, streaming, online)
//   bpsio/capture.hpp   real-I/O capture configuration
//   bpsio/workload.hpp  workload registry, trace replay, application zoo
//   core/experiment.hpp RunSpec / SweepOptions / run_sweep — simulator
//                       experiment sweeps (Figures 4-13 of the paper)
//
// Prefer the per-area headers in new code; the umbrella is for quick
// experiments and for the header self-containment CI job, which compiles
// each include/bpsio/*.hpp standalone with -Wall -Werror. docs/API.md
// documents what "stable" means here.
#pragma once

#include "bpsio/capture.hpp"
#include "bpsio/metrics.hpp"
#include "bpsio/trace.hpp"
#include "bpsio/workload.hpp"
#include "core/experiment.hpp"
