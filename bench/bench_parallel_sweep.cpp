// Serial vs concurrent sweep runner on the Figure-9 concurrency study.
//
// The CC methodology re-runs a whole simulation per (sweep point, seed)
// pair — repeats * points independent single-threaded Simulators, which is
// exactly the shape a thread pool eats. This harness times the same sweep
// at increasing pool widths, checks every width reproduces the serial
// metrics bit-for-bit (determinism is part of the contract, not a separate
// test-only property), and prints the speedup column.
//
//   bench_parallel_sweep [--scale=1.0] [--repeats=3] [--seed=42]
//                        [--threads=8]   # max pool width; sweeps 1,2,4..max
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "common/thread_pool.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "tools/cli.hpp"

using namespace bpsio;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

bool samples_identical(const std::vector<metrics::MetricSample>& a,
                       const std::vector<metrics::MetricSample>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].exec_time_s != b[i].exec_time_s || a[i].bps != b[i].bps ||
        a[i].iops != b[i].iops || a[i].arpt_s != b[i].arpt_s ||
        a[i].bandwidth_bps != b[i].bandwidth_bps ||
        a[i].moved_bytes != b[i].moved_bytes) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  long long repeats = 3;
  long long seed = 42;
  long long threads = 8;

  cli::ArgParser parser("bench_parallel_sweep",
                        "Time the fig9 sweep at growing pool widths and "
                        "verify every width reproduces the serial metrics "
                        "bit-for-bit.");
  parser.add_positive_double("--scale", &scale, "FACTOR",
                             "workload size multiplier (default 1.0)");
  parser.add_int("--repeats", &repeats, 1, 1000, "N",
                 "seeds averaged per sweep point (default 3)");
  parser.add_int("--seed", &seed, 0, INT64_MAX, "S",
                 "base RNG seed (default 42)");
  parser.add_int("--threads", &threads, 0, 1024, "N",
                 "max pool width, sweeps 1,2,4..max; 0 = all cores "
                 "(default 8)");
  std::vector<std::string> positionals;
  switch (parser.parse(argc, argv, positionals)) {
    case cli::ArgParser::Outcome::help: return 0;
    case cli::ArgParser::Outcome::error: return 2;
    case cli::ArgParser::Outcome::ok: break;
  }

  core::figures::FigureDefaults d;
  d.scale = scale;
  d.repeats = static_cast<std::uint32_t>(repeats);
  d.base_seed = static_cast<std::uint64_t>(seed);
  const std::size_t max_threads = threads <= 0
                                      ? ThreadPool::hardware_threads()
                                      : static_cast<std::size_t>(threads);

  const auto specs = core::figures::fig9_concurrency_pure(d);
  std::printf("=== concurrent sweep runner: fig9, %zu points x %u repeats "
              "(seed=%llu) ===\n",
              specs.size(), d.repeats,
              static_cast<unsigned long long>(d.base_seed));
  std::printf("hardware threads: %zu\n\n", ThreadPool::hardware_threads());

  core::SweepOptions base;
  base.repeats = d.repeats;
  base.base_seed = d.base_seed;

  core::SweepResult serial;
  const double t_serial =
      wall_seconds([&] { serial = core::run_sweep(specs, base); });

  TextTable table({"threads", "wall(s)", "speedup", "bit-identical"});
  table.add_row({"1", fmt_double(t_serial, 3), "1.00", "baseline"});
  for (std::size_t threads = 2; threads <= max_threads; threads *= 2) {
    core::SweepOptions opt = base;
    opt.threads = threads;
    core::SweepResult parallel;
    const double t =
        wall_seconds([&] { parallel = core::run_sweep(specs, opt); });
    const bool same = samples_identical(serial.samples, parallel.samples);
    table.add_row({std::to_string(threads), fmt_double(t, 3),
                   fmt_double(t_serial / t, 2), same ? "yes" : "NO !!"});
    if (!same) {
      std::printf("ERROR: threads=%zu diverged from the serial sweep\n",
                  threads);
      return 1;
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("BPS normalized CC (serial reference): %s\n",
              fmt_double(serial.report.of(metrics::MetricKind::bps)
                             .normalized_cc, 3).c_str());
  return 0;
}
