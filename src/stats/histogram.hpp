// Log-scaled latency histogram for device / middleware diagnostics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bpsio::stats {

/// Histogram with geometrically-spaced bucket boundaries, suitable for
/// latency distributions spanning microseconds to seconds.
class LogHistogram {
 public:
  /// Buckets: [0, lo), [lo, lo*g), [lo*g, lo*g²), ..., [hi, inf).
  LogHistogram(double lo, double hi, double growth = 2.0);

  void add(double value);
  std::size_t count() const { return total_; }

  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket_value(std::size_t i) const { return counts_.at(i); }
  /// Lower bound of bucket i (0 for the underflow bucket).
  double bucket_lower(std::size_t i) const;

  /// Approximate quantile from bucket midpoints. q in [0,1].
  double quantile(double q) const;

  std::string to_string() const;

 private:
  double lo_;
  double growth_;
  std::vector<double> bounds_;  // upper bounds of all but the last bucket
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace bpsio::stats
