#include "core/bps_meter.hpp"

#include <cstdio>

#include "metrics/overlap.hpp"

namespace bpsio::core {

std::string BpsReading::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "BPS=%.6g (B=%llu blocks over T=%.6gs; %llu accesses, "
                "%zu processes, idle=%.6gs, avg concurrency=%.2f)",
                bps, static_cast<unsigned long long>(blocks), io_time_s,
                static_cast<unsigned long long>(accesses), processes,
                idle_time_s, avg_concurrency);
  return buf;
}

BpsReading BpsMeter::measure(const trace::RecordFilter& filter) const {
  BpsReading r;
  r.blocks = block_size_ == kDefaultBlockSize
                 ? collector_.total_blocks(filter)
                 : bytes_to_blocks(
                       collector_.total_bytes(kDefaultBlockSize, filter),
                       block_size_);
  const auto col_time = collector_.col_time(filter);
  const SimDuration t = algo_ == metrics::OverlapAlgorithm::paper
                            ? metrics::overlap_time_paper(col_time)
                            : metrics::overlap_time_merged(col_time);
  r.io_time_s = t.seconds();
  r.bps = t.ns() > 0 ? static_cast<double>(r.blocks) / t.seconds() : 0.0;
  std::size_t n = 0;
  for (const auto& rec : collector_.records()) {
    if (filter.matches(rec)) ++n;
  }
  r.accesses = n;
  r.processes = collector_.process_count();
  r.idle_time_s = metrics::idle_time(col_time).seconds();
  r.avg_concurrency = metrics::average_concurrency(col_time);
  return r;
}

}  // namespace bpsio::core
