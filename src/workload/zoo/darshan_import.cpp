#include "workload/zoo/darshan_import.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

namespace bpsio::workload::zoo {

namespace {

struct LineError {
  std::string what;
};

void strip_comment_and_trim(std::string& line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string::npos) line.resize(hash);
  while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                           line.back() == '\r')) {
    line.pop_back();
  }
  std::size_t begin = 0;
  while (begin < line.size() && (line[begin] == ' ' || line[begin] == '\t')) {
    ++begin;
  }
  if (begin > 0) line.erase(0, begin);
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream ls(line);
  std::string field;
  while (std::getline(ls, field, ',')) {
    strip_comment_and_trim(field);
    fields.push_back(field);
  }
  return fields;
}

Error line_error(std::size_t line_no, const std::string& what) {
  return Error{Errc::invalid_argument,
               "darshan log line " + std::to_string(line_no) + ": " + what};
}

/// access,<rank>,<R|W>,<length_bytes>,<start_ns>,<end_ns>[,<flags>]
Result<std::vector<trace::IoRecord>> parse_access(
    const std::vector<std::string>& f, std::size_t line_no,
    const DarshanOptions& opts) {
  if (f.size() != 6 && f.size() != 7) {
    return line_error(line_no, "access form needs 6 or 7 fields");
  }
  trace::IoRecord r;
  try {
    r.pid = static_cast<std::uint32_t>(std::stoul(f[1])) + 1;  // rank -> pid
    if (f[2] == "R") {
      r.op = trace::IoOpKind::read;
    } else if (f[2] == "W") {
      r.op = trace::IoOpKind::write;
    } else {
      return line_error(line_no, "op must be R or W, got '" + f[2] + "'");
    }
    r.blocks = bytes_to_blocks(std::stoull(f[3]), opts.block_size);
    r.start_ns = std::stoll(f[4]);
    r.end_ns = std::stoll(f[5]);
    if (f.size() == 7) r.flags = static_cast<std::uint8_t>(std::stoul(f[6]));
  } catch (const std::exception&) {
    return line_error(line_no, "unparsable numeric field");
  }
  if (!r.valid()) return line_error(line_no, "end_ns precedes start_ns");
  return std::vector<trace::IoRecord>{r};
}

/// Spread `count` accesses totalling `bytes` evenly over [start, end),
/// remainder bytes on the first access.
void synthesize(std::vector<trace::IoRecord>& out, std::uint32_t pid,
                trace::IoOpKind op, std::uint64_t count, std::uint64_t bytes,
                std::int64_t start, std::int64_t end,
                const DarshanOptions& opts) {
  if (count == 0) return;
  const std::int64_t span = end - start;
  const std::uint64_t each = bytes / count;
  const std::uint64_t first = each + bytes % count;
  for (std::uint64_t i = 0; i < count; ++i) {
    trace::IoRecord r;
    r.pid = pid;
    r.op = op;
    r.blocks = bytes_to_blocks(i == 0 ? first : each, opts.block_size);
    r.start_ns = start + span * static_cast<std::int64_t>(i) /
                             static_cast<std::int64_t>(count);
    r.end_ns = start + span * static_cast<std::int64_t>(i + 1) /
                           static_cast<std::int64_t>(count);
    out.push_back(r);
  }
}

/// counters,<rank>,<opens>,<seeks>,<reads>,<writes>,<read_bytes>,
///          <write_bytes>,<start_ns>,<end_ns>
Result<std::vector<trace::IoRecord>> parse_counters(
    const std::vector<std::string>& f, std::size_t line_no,
    const DarshanOptions& opts) {
  if (f.size() != 10) {
    return line_error(line_no, "counters form needs 10 fields");
  }
  std::uint32_t pid = 0;
  std::uint64_t reads = 0, writes = 0, read_bytes = 0, write_bytes = 0;
  std::int64_t start = 0, end = 0;
  try {
    pid = static_cast<std::uint32_t>(std::stoul(f[1])) + 1;  // rank -> pid
    // f[2] (opens) and f[3] (seeks) are validated as numbers but move no
    // application data, so they emit no records.
    (void)std::stoull(f[2]);
    (void)std::stoull(f[3]);
    reads = std::stoull(f[4]);
    writes = std::stoull(f[5]);
    read_bytes = std::stoull(f[6]);
    write_bytes = std::stoull(f[7]);
    start = std::stoll(f[8]);
    end = std::stoll(f[9]);
  } catch (const std::exception&) {
    return line_error(line_no, "unparsable numeric field");
  }
  if (end < start) return line_error(line_no, "end_ns precedes start_ns");
  if (reads == 0 && read_bytes > 0) {
    return line_error(line_no, "read bytes with zero read count");
  }
  if (writes == 0 && write_bytes > 0) {
    return line_error(line_no, "write bytes with zero write count");
  }
  std::vector<trace::IoRecord> out;
  out.reserve(reads + writes);
  synthesize(out, pid, trace::IoOpKind::read, reads, read_bytes, start, end,
             opts);
  synthesize(out, pid, trace::IoOpKind::write, writes, write_bytes, start, end,
             opts);
  return out;
}

}  // namespace

Result<std::vector<trace::IoRecord>> parse_darshan(std::string_view text,
                                                   const DarshanOptions& opts) {
  if (opts.block_size == 0) {
    return Error{Errc::invalid_argument, "darshan import: zero block size"};
  }
  std::vector<trace::IoRecord> records;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    strip_comment_and_trim(line);
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_fields(line);
    Result<std::vector<trace::IoRecord>> parsed =
        fields.empty()
            ? Result<std::vector<trace::IoRecord>>(
                  line_error(line_no, "empty entry"))
        : fields[0] == "access" ? parse_access(fields, line_no, opts)
        : fields[0] == "counters"
            ? parse_counters(fields, line_no, opts)
            : Result<std::vector<trace::IoRecord>>(line_error(
                  line_no, "unknown entry kind '" + fields[0] + "'"));
    if (!parsed) return parsed.error();
    records.insert(records.end(), parsed->begin(), parsed->end());
  }
  return records;
}

Result<std::vector<trace::IoRecord>> load_darshan(const std::string& path,
                                                  const DarshanOptions& opts) {
  std::ifstream in(path);
  if (!in) {
    return Error{Errc::not_found, "cannot open darshan log: " + path};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_darshan(buf.str(), opts);
}

std::string export_darshan(const std::vector<trace::IoRecord>& records,
                           const DarshanOptions& opts) {
  std::ostringstream out;
  out << "# bpsio darshan-style log (per-access form)\n"
      << "# access,<rank>,<R|W>,<length_bytes>,<start_ns>,<end_ns>,<flags>\n";
  for (const trace::IoRecord& r : records) {
    const std::uint32_t rank = r.pid > 0 ? r.pid - 1 : 0;
    out << "access," << rank << ','
        << (r.op == trace::IoOpKind::write ? 'W' : 'R') << ','
        << r.blocks * opts.block_size << ',' << r.start_ns << ',' << r.end_ns
        << ',' << static_cast<unsigned>(r.flags) << '\n';
  }
  return out.str();
}

Status save_darshan(const std::string& path,
                    const std::vector<trace::IoRecord>& records,
                    const DarshanOptions& opts) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Error{Errc::io_error, "cannot write darshan log: " + path};
  }
  out << export_darshan(records, opts);
  out.flush();
  if (!out) {
    return Error{Errc::io_error, "short write to darshan log: " + path};
  }
  return {};
}

}  // namespace bpsio::workload::zoo
