// The whole evaluation at a glance: runs every CC sweep (Sets 1-4 /
// Figures 4, 5, 6, 9, 11, 12), prints Table 1 (expected directions),
// Table 2 (the experiment sets), the per-set normalized CC values, and the
// paper's headline claim — BPS is the only metric with the correct
// correlation direction in every scenario, with |CC| ~0.9 on average.
#include "figure_bench.hpp"

using namespace bpsio;

int main(int argc, char** argv) {
  const auto d = bench::defaults_from_args(argc, argv);

  std::printf("=== Table 1: expected correlation directions ===\n");
  bench::print_expected_directions();

  std::printf("=== Table 2: I/O access cases ===\n");
  {
    TextTable t({"experiments", "description", "figure(s)"});
    t.add_row({"Set1", "various storage device", "Fig 4"});
    t.add_row({"Set2", "various I/O request size", "Fig 5, 6, 7, 8"});
    t.add_row({"Set3", "various I/O concurrency", "Fig 9, 10, 11"});
    t.add_row({"Set4", "various additional data movement", "Fig 12"});
    std::printf("%s\n", t.to_string().c_str());
  }

  struct Entry {
    const char* id;
    std::vector<core::RunSpec> specs;
  };
  std::vector<Entry> entries;
  entries.push_back({"Fig4  set1 devices", core::figures::fig4_devices(d)});
  entries.push_back({"Fig5  set2 hdd", core::figures::fig5_iosize_hdd(d)});
  entries.push_back({"Fig6  set2 ssd", core::figures::fig6_iosize_ssd(d)});
  entries.push_back(
      {"Fig9  set3a pure", core::figures::fig9_concurrency_pure(d)});
  entries.push_back(
      {"Fig11 set3b ior", core::figures::fig11_concurrency_ior(d)});
  entries.push_back(
      {"Fig12 set4 sieving", core::figures::fig12_datasieving(d)});

  TextTable summary({"experiment", "IOPS", "BW", "ARPT", "BPS"});
  double bps_sum = 0.0;
  bool bps_always_correct = true;
  int iops_wrong = 0, bw_wrong = 0, arpt_wrong = 0;
  for (auto& e : entries) {
    const auto sweep = core::figures::run_figure(e.specs, d);
    auto cell = [&](metrics::MetricKind k) {
      return fmt_double(sweep.report.of(k).normalized_cc, 3);
    };
    summary.add_row({e.id, cell(metrics::MetricKind::iops),
                     cell(metrics::MetricKind::bandwidth),
                     cell(metrics::MetricKind::arpt),
                     cell(metrics::MetricKind::bps)});
    const auto& bps = sweep.report.of(metrics::MetricKind::bps);
    bps_sum += bps.normalized_cc;
    bps_always_correct = bps_always_correct && bps.direction_correct;
    iops_wrong += sweep.report.of(metrics::MetricKind::iops).direction_correct ? 0 : 1;
    bw_wrong += sweep.report.of(metrics::MetricKind::bandwidth).direction_correct ? 0 : 1;
    arpt_wrong += sweep.report.of(metrics::MetricKind::arpt).direction_correct ? 0 : 1;
  }

  std::printf("=== Normalized CC values per experiment set ===\n%s\n",
              summary.to_string().c_str());
  std::printf("BPS correct in all sets: %s (paper: yes)\n",
              bps_always_correct ? "yes" : "NO");
  std::printf("mean BPS |CC| across sets: %.3f (paper headline: 0.91)\n",
              bps_sum / static_cast<double>(entries.size()));
  std::printf("sets where each conventional metric misleads: IOPS %d, BW %d, "
              "ARPT %d (paper: each misleads somewhere)\n",
              iops_wrong, bw_wrong, arpt_wrong);
  return 0;
}
