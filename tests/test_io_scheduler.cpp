#include <gtest/gtest.h>

#include "device/hdd_model.hpp"
#include "device/io_scheduler.hpp"
#include "core/testbed.hpp"
#include "device/ram_device.hpp"
#include "sim/simulator.hpp"
#include "workload/registry.hpp"

namespace bpsio::device {
namespace {

TEST(IoScheduler, MergesContiguousRequests) {
  sim::Simulator sim;
  RamDevice ram(sim, RamParams{.capacity = 64 * kMiB});
  IoScheduler sched(sim, ram);
  int completed = 0;
  // Eight 4 KiB requests forming one contiguous 32 KiB run, staged together.
  for (int i = 0; i < 8; ++i) {
    sched.submit(DevOp::read, static_cast<Bytes>(i) * 4096, 4096,
                 [&](DevResult r) {
                   EXPECT_TRUE(r.ok);
                   ++completed;
                 });
  }
  sim.run();
  EXPECT_EQ(completed, 8);
  EXPECT_EQ(sched.scheduler_stats().requests_in, 8u);
  EXPECT_EQ(sched.scheduler_stats().commands_out, 1u);
  EXPECT_EQ(sched.scheduler_stats().merges, 7u);
  // The lower device saw exactly one 32 KiB command.
  EXPECT_EQ(ram.stats().read_ops, 1u);
  EXPECT_EQ(ram.stats().bytes_read, 32u * kKiB);
}

TEST(IoScheduler, OutOfOrderArrivalsStillMerge) {
  sim::Simulator sim;
  RamDevice ram(sim, RamParams{.capacity = 64 * kMiB});
  IoScheduler sched(sim, ram);
  for (const Bytes off : {Bytes{8192}, Bytes{0}, Bytes{4096}}) {
    sched.submit(DevOp::write, off, 4096, [](DevResult) {});
  }
  sim.run();
  EXPECT_EQ(sched.scheduler_stats().commands_out, 1u);
  EXPECT_EQ(ram.stats().bytes_written, 12288u);
}

TEST(IoScheduler, DifferentOpsNeverMerge) {
  sim::Simulator sim;
  RamDevice ram(sim, RamParams{.capacity = 64 * kMiB});
  IoScheduler sched(sim, ram);
  sched.submit(DevOp::read, 0, 4096, [](DevResult) {});
  sched.submit(DevOp::write, 4096, 4096, [](DevResult) {});
  sim.run();
  EXPECT_EQ(sched.scheduler_stats().commands_out, 2u);
}

TEST(IoScheduler, GapsBreakMerges) {
  sim::Simulator sim;
  RamDevice ram(sim, RamParams{.capacity = 64 * kMiB});
  IoScheduler sched(sim, ram);
  sched.submit(DevOp::read, 0, 4096, [](DevResult) {});
  sched.submit(DevOp::read, 8192, 4096, [](DevResult) {});  // hole at 4096
  sim.run();
  EXPECT_EQ(sched.scheduler_stats().commands_out, 2u);
  EXPECT_EQ(ram.stats().bytes_read, 8192u);  // the hole is NOT read
}

TEST(IoScheduler, MaxMergedBoundsCommandSize) {
  sim::Simulator sim;
  RamDevice ram(sim, RamParams{.capacity = 64 * kMiB});
  IoSchedulerParams params;
  params.max_merged = 16 * kKiB;
  IoScheduler sched(sim, ram, params);
  for (int i = 0; i < 8; ++i) {
    sched.submit(DevOp::read, static_cast<Bytes>(i) * 4096, 4096,
                 [](DevResult) {});
  }
  sim.run();
  EXPECT_EQ(sched.scheduler_stats().commands_out, 2u);  // 2 x 16 KiB
}

TEST(IoScheduler, DisabledModePassesThrough) {
  sim::Simulator sim;
  RamDevice ram(sim, RamParams{.capacity = 64 * kMiB});
  IoSchedulerParams params;
  params.enabled = false;
  IoScheduler sched(sim, ram, params);
  for (int i = 0; i < 4; ++i) {
    sched.submit(DevOp::read, static_cast<Bytes>(i) * 4096, 4096,
                 [](DevResult) {});
  }
  sim.run();
  EXPECT_EQ(sched.scheduler_stats().commands_out, 4u);
  EXPECT_EQ(ram.stats().read_ops, 4u);
}

TEST(IoScheduler, RequestsArrivingAfterPlugWindowFormNewBatch) {
  sim::Simulator sim;
  RamDevice ram(sim, RamParams{.capacity = 64 * kMiB});
  IoScheduler sched(sim, ram);
  sched.submit(DevOp::read, 0, 4096, [](DevResult) {});
  // Let the plug window elapse, then stage the contiguous continuation.
  sim.schedule_after(SimDuration::from_ms(1.0), [&]() {
    sched.submit(DevOp::read, 4096, 4096, [](DevResult) {});
  });
  sim.run();
  EXPECT_EQ(sched.scheduler_stats().commands_out, 2u);
}

TEST(IoScheduler, MergingReducesHddTimeForSmallSequentialBursts) {
  // 64 x 4 KiB contiguous requests, staged at once: merged commands
  // amortize the per-command overhead of the disk.
  auto run_mode = [](bool enabled) {
    sim::Simulator sim;
    HddParams hp;
    hp.capacity = 8 * kGiB;
    hp.deterministic_rotation = true;
    HddModel hdd(sim, hp);
    IoSchedulerParams params;
    params.enabled = enabled;
    IoScheduler sched(sim, hdd, params);
    for (int i = 0; i < 64; ++i) {
      sched.submit(DevOp::read, static_cast<Bytes>(i) * 4096, 4096,
                   [](DevResult) {});
    }
    sim.run();
    return sim.now().seconds();
  };
  EXPECT_LT(run_mode(true), 0.5 * run_mode(false));
}

TEST(IoScheduler, WorksAsTestbedDeviceUnderTheFullStack) {
  // Decorator composed via the Testbed device factory: a full workload runs
  // through middleware -> FS -> scheduler -> disk, and the merge counters
  // show the block layer actually batching the FS's page-sized fetches.
  core::TestbedConfig cfg;
  cfg.backend = core::BackendKind::local;
  IoScheduler* sched_ptr = nullptr;
  cfg.device_factory = [&sched_ptr](sim::Simulator& sim, std::uint64_t seed) {
    struct Owned : IoScheduler {
      // Keep the wrapped disk alive alongside the decorator.
      Owned(sim::Simulator& s, std::unique_ptr<BlockDevice> d,
            IoSchedulerParams p)
          : IoScheduler(s, *d, p), disk(std::move(d)) {}
      std::unique_ptr<BlockDevice> disk;
    };
    HddParams hp;
    hp.capacity = 8 * kGiB;
    hp.deterministic_rotation = true;
    auto owned = std::make_unique<Owned>(
        sim, std::make_unique<HddModel>(sim, hp, seed), IoSchedulerParams{});
    sched_ptr = owned.get();
    return owned;
  };
  cfg.local_fs.max_device_io = 4096;  // page-sized device requests to merge
  core::Testbed testbed(cfg);

  workload::IozoneConfig wl;
  wl.file_size = 4 * kMiB;
  wl.record_size = 256 * kKiB;
  const auto wkl = workload::make_workload(wl);
  const auto run = wkl->run(testbed.env());
  EXPECT_EQ(blocks_to_bytes(run.collector.total_blocks()), 4u * kMiB);
  ASSERT_NE(sched_ptr, nullptr);
  EXPECT_GT(sched_ptr->scheduler_stats().merges, 0u);
  EXPECT_LT(sched_ptr->scheduler_stats().commands_out,
            sched_ptr->scheduler_stats().requests_in);
}

TEST(IoScheduler, DecoratorStatsMirrorApplicationBytes) {
  sim::Simulator sim;
  RamDevice ram(sim, RamParams{.capacity = 64 * kMiB});
  IoScheduler sched(sim, ram);
  for (int i = 0; i < 8; ++i) {
    sched.submit(DevOp::read, static_cast<Bytes>(i) * 4096, 4096,
                 [](DevResult) {});
  }
  sim.run();
  // The decorator accounts the merged command once (32 KiB) — its stats
  // describe the command stream it emits, like a real block layer's.
  EXPECT_EQ(sched.stats().bytes_read, 32u * kKiB);
  EXPECT_EQ(sched.stats().read_ops, 1u);
}

}  // namespace
}  // namespace bpsio::device
