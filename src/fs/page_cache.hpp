// LRU page cache for the simulated local file system.
//
// Tracks which (file, page) pairs are resident — there is no data, only
// residency and dirtiness. The read path asks for the miss runs of a page
// range; the write path inserts dirty pages (write-back) or clean pages
// (write-through). Evictions of dirty pages surface to the caller so the
// file system can schedule the write-back I/O.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace bpsio::fs {

/// A run of consecutive pages of one file.
struct PageRun {
  std::uint32_t file_id = 0;
  std::uint64_t first_page = 0;
  std::uint64_t page_count = 0;
  friend bool operator==(const PageRun&, const PageRun&) = default;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  double hit_rate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class PageCache {
 public:
  /// `capacity` in bytes, `page_size` the caching granularity.
  PageCache(Bytes capacity, Bytes page_size);

  Bytes page_size() const { return page_size_; }
  std::size_t capacity_pages() const { return capacity_pages_; }
  std::size_t resident_pages() const { return map_.size(); }

  /// Probe pages [first, first+count) of `file_id`. Hits are touched
  /// (moved to MRU); the gaps are returned as maximal miss runs.
  std::vector<PageRun> probe(std::uint32_t file_id, std::uint64_t first_page,
                             std::uint64_t count);

  /// True when every page of the range is resident (touches on hit).
  bool contains(std::uint32_t file_id, std::uint64_t first_page,
                std::uint64_t count);

  /// Insert pages (MRU). Already-resident pages are refreshed; a clean
  /// insert over a dirty page keeps it dirty. Returns the *dirty* page runs
  /// evicted to make room — the caller owns writing them back.
  std::vector<PageRun> insert(std::uint32_t file_id, std::uint64_t first_page,
                              std::uint64_t count, bool dirty);

  /// Remove and return all dirty runs (they become clean-resident).
  std::vector<PageRun> collect_dirty();
  /// Drop every page, dirty or not (simulates `echo 3 > drop_caches`).
  void invalidate_all();
  /// Drop all pages belonging to one file (on remove()).
  void invalidate_file(std::uint32_t file_id);

  const CacheStats& stats() const { return stats_; }
  void clear_stats() { stats_ = CacheStats{}; }

 private:
  using Key = std::uint64_t;  // file_id << 40 | page_index
  static Key make_key(std::uint32_t file_id, std::uint64_t page) {
    return (static_cast<Key>(file_id) << 40) | page;
  }
  static std::uint32_t key_file(Key k) {
    return static_cast<std::uint32_t>(k >> 40);
  }
  static std::uint64_t key_page(Key k) { return k & ((1ULL << 40) - 1); }

  struct Entry {
    std::list<Key>::iterator lru_pos;
    bool dirty = false;
  };

  /// Evict the LRU page; append to `dirty_out` if it was dirty.
  void evict_one(std::vector<Key>& dirty_out);
  static std::vector<PageRun> keys_to_runs(std::vector<Key> keys);

  Bytes page_size_;
  std::size_t capacity_pages_;
  std::list<Key> lru_;  ///< front = MRU, back = LRU
  std::unordered_map<Key, Entry> map_;
  CacheStats stats_;
};

}  // namespace bpsio::fs
