// MappedTraceSource (trace/mapped_source.hpp): the mmap twin of
// SpilledTraceSource must be bit-identical to it on every input — same
// records, same status() behavior, same error text — and its spans must
// genuinely alias the mapping (zero copy) while staying safe to abandon
// mid-stream. Failure modes are exercised differentially: whatever the
// ifstream source says about a corrupt file, the mapped source must say
// verbatim.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "trace/mapped_source.hpp"
#include "trace/merge.hpp"
#include "trace/record_source.hpp"
#include "trace/serialize.hpp"
#include "trace/spill_writer.hpp"

namespace bpsio {
namespace {

using trace::IoRecord;
using trace::make_record;

std::vector<IoRecord> drain(trace::RecordSource& source) {
  std::vector<IoRecord> all;
  for (auto chunk = source.next_chunk(); !chunk.empty();
       chunk = source.next_chunk()) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  return all;
}

std::vector<IoRecord> ordered_records(std::size_t n) {
  std::vector<IoRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = static_cast<std::int64_t>(i) * 10;
    records.push_back(make_record(static_cast<std::uint32_t>(i % 5), i % 7 + 1,
                                  SimTime(s), SimTime(s + 25)));
  }
  return records;
}

std::string write_spill(const std::string& path,
                        const std::vector<IoRecord>& records) {
  trace::SpillWriter writer(path, /*batch_records=*/16);
  for (const auto& r : records) writer.append(r);
  EXPECT_TRUE(writer.close().ok());
  return path;
}

/// Overwrite `path` with exactly `bytes`.
void write_raw(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<char> read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  std::vector<char> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

TEST(MappedTraceSource, StreamsExactlyTheFileContents) {
  const auto records = ordered_records(100);
  const std::string path =
      write_spill("/tmp/bpsio_map_stream.bpstrace", records);
  trace::MappedTraceSource source(path, /*chunk_records=*/7);
  ASSERT_TRUE(source.status().ok()) << source.status().to_string();
  EXPECT_EQ(source.record_count(), 100u);
  ASSERT_TRUE(source.size_hint().has_value());
  EXPECT_EQ(*source.size_hint(), 100u);
  EXPECT_EQ(drain(source), records);
  EXPECT_TRUE(source.status().ok());
  std::remove(path.c_str());
}

TEST(MappedTraceSource, ChunksAreContiguousWindowsOverTheMapping) {
  // Zero-copy means consecutive chunks are literally adjacent in memory —
  // a copying source would hand back the same scratch buffer every time.
  const auto records = ordered_records(30);
  const std::string path = write_spill("/tmp/bpsio_map_zc.bpstrace", records);
  trace::MappedTraceSource source(path, /*chunk_records=*/10);
  ASSERT_TRUE(source.status().ok());
  const auto first = source.next_chunk();
  const auto second = source.next_chunk();
  ASSERT_EQ(first.size(), 10u);
  ASSERT_EQ(second.size(), 10u);
  EXPECT_EQ(second.data(), first.data() + first.size());
  std::remove(path.c_str());
}

TEST(MappedTraceSource, MatchesSpilledSourceOnTruncatedFile) {
  const auto records = ordered_records(40);
  const std::string path =
      write_spill("/tmp/bpsio_map_trunc.bpstrace", records);
  // Chop the last 1.5 records off the file.
  auto bytes = read_raw(path);
  bytes.resize(bytes.size() - sizeof(IoRecord) - sizeof(IoRecord) / 2);
  write_raw(path, bytes);

  trace::MappedTraceSource mapped(path, /*chunk_records=*/16);
  trace::SpilledTraceSource spilled(path, /*chunk_records=*/16);
  ASSERT_TRUE(mapped.status().ok());  // header still intact
  ASSERT_TRUE(spilled.status().ok());
  // Both deliver the same complete chunks before failing...
  EXPECT_EQ(drain(mapped), drain(spilled));
  EXPECT_FALSE(mapped.status().ok());
  EXPECT_FALSE(spilled.status().ok());
  // ...and fail with byte-identical messages, which are also the loader's.
  EXPECT_EQ(mapped.status().error().message, spilled.status().error().message);
  const auto loaded = trace::load_binary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(mapped.status().error().message, loaded.error().message);
  // A failed source yields nothing further and hides its hint.
  EXPECT_TRUE(mapped.next_chunk().empty());
  EXPECT_FALSE(mapped.size_hint().has_value());
  std::remove(path.c_str());
}

TEST(MappedTraceSource, MatchesSpilledSourceOnBadHeaders) {
  const std::string path = "/tmp/bpsio_map_badheader.bpstrace";
  const auto records = ordered_records(8);
  write_spill(path, records);
  const auto good = read_raw(path);

  // One corruption per header field the parser validates, plus a header
  // shorter than 24 bytes.
  std::vector<std::vector<char>> corruptions;
  auto bad_magic = good;
  bad_magic[0] = 'X';
  corruptions.push_back(bad_magic);
  auto bad_version = good;
  bad_version[4] = 99;
  corruptions.push_back(bad_version);
  auto bad_record_size = good;
  bad_record_size[8] = 16;
  corruptions.push_back(bad_record_size);
  corruptions.push_back(std::vector<char>(good.begin(), good.begin() + 10));

  for (std::size_t i = 0; i < corruptions.size(); ++i) {
    write_raw(path, corruptions[i]);
    trace::MappedTraceSource mapped(path);
    trace::SpilledTraceSource spilled(path);
    EXPECT_FALSE(mapped.status().ok()) << "corruption " << i;
    EXPECT_FALSE(spilled.status().ok()) << "corruption " << i;
    EXPECT_EQ(mapped.status().error().message,
              spilled.status().error().message)
        << "corruption " << i;
    EXPECT_EQ(mapped.status().error().code, spilled.status().error().code)
        << "corruption " << i;
    // A malformed FILE is not an environment failure: the factory must NOT
    // fall back and give the corruption a second chance.
    EXPECT_FALSE(mapped.environment_failed()) << "corruption " << i;
    EXPECT_TRUE(mapped.next_chunk().empty()) << "corruption " << i;
    EXPECT_FALSE(mapped.size_hint().has_value()) << "corruption " << i;
    EXPECT_EQ(mapped.record_count(), 0u) << "corruption " << i;
  }
  std::remove(path.c_str());
}

TEST(MappedTraceSource, EmptyFileMatchesSpilledSource) {
  const std::string path = "/tmp/bpsio_map_empty.bpstrace";
  write_raw(path, {});
  trace::MappedTraceSource mapped(path);
  trace::SpilledTraceSource spilled(path);
  EXPECT_FALSE(mapped.status().ok());
  EXPECT_FALSE(spilled.status().ok());
  EXPECT_EQ(mapped.status().error().message, spilled.status().error().message);
  EXPECT_FALSE(mapped.environment_failed());
  std::remove(path.c_str());
}

TEST(MappedTraceSource, ZeroRecordFileStreamsNothingCleanly) {
  const std::string path =
      write_spill("/tmp/bpsio_map_zero.bpstrace", {});
  trace::MappedTraceSource mapped(path);
  trace::SpilledTraceSource spilled(path);
  ASSERT_TRUE(mapped.status().ok()) << mapped.status().to_string();
  ASSERT_TRUE(spilled.status().ok());
  EXPECT_EQ(mapped.record_count(), 0u);
  ASSERT_TRUE(mapped.size_hint().has_value());
  EXPECT_EQ(*mapped.size_hint(), 0u);
  EXPECT_TRUE(mapped.next_chunk().empty());
  EXPECT_TRUE(mapped.status().ok());
  std::remove(path.c_str());
}

TEST(MappedTraceSource, MissingFileFailsUpFront) {
  trace::MappedTraceSource source("/tmp/bpsio_no_such_map.bpstrace");
  EXPECT_FALSE(source.status().ok());
  EXPECT_TRUE(source.environment_failed());
  EXPECT_TRUE(source.next_chunk().empty());
  EXPECT_FALSE(source.size_hint().has_value());
  // The factory's fallback reports the missing file with the exact text the
  // ifstream source always used.
  trace::SpilledTraceSource spilled("/tmp/bpsio_no_such_map.bpstrace");
  const auto fallback =
      trace::open_trace_source("/tmp/bpsio_no_such_map.bpstrace");
  EXPECT_FALSE(fallback->status().ok());
  EXPECT_EQ(fallback->status().error().message,
            spilled.status().error().message);
}

TEST(MappedTraceSource, MidStreamAbandonmentIsSafe) {
  // Destroying the source (and thus the mapping) halfway through a stream
  // must be clean: records already copied out stay intact, nothing dangles.
  // Under ASan this is the unmap-safety probe for the whole span contract.
  const auto records = ordered_records(64);
  const std::string path =
      write_spill("/tmp/bpsio_map_abandon.bpstrace", records);
  std::vector<IoRecord> copied;
  {
    trace::MappedTraceSource source(path, /*chunk_records=*/16);
    ASSERT_TRUE(source.status().ok());
    const auto chunk = source.next_chunk();
    ASSERT_EQ(chunk.size(), 16u);
    copied.assign(chunk.begin(), chunk.end());
    (void)source.next_chunk();  // leave the stream half-consumed
  }
  for (std::size_t i = 0; i < copied.size(); ++i) {
    EXPECT_EQ(copied[i], records[i]) << "record " << i;
  }
  std::remove(path.c_str());
}

TEST(OpenTraceSource, PrefersTheMappingAndFallsBackOnlyOnEnvironment) {
  const auto records = ordered_records(20);
  const std::string path =
      write_spill("/tmp/bpsio_map_factory.bpstrace", records);
  const auto source = trace::open_trace_source(path, /*chunk_records=*/8);
  ASSERT_TRUE(source->status().ok());
  // On this platform mmap works, so the factory must return the mapped
  // source, not the ifstream fallback.
  EXPECT_NE(dynamic_cast<trace::MappedTraceSource*>(source.get()), nullptr);
  EXPECT_EQ(drain(*source), records);
  std::remove(path.c_str());
}

TEST(OpenTraceSource, MergedChildrenMatchIfstreamChildren) {
  // The drain/report merge must produce the identical record sequence
  // whether its children are mapped or streamed — including the (start,
  // end, child-index) tie-break.
  std::vector<IoRecord> a;
  std::vector<IoRecord> b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(make_record(1, 2, SimTime(i * 20), SimTime(i * 20 + 30)));
    b.push_back(make_record(2, 3, SimTime(i * 20), SimTime(i * 20 + 30)));
    b.push_back(make_record(2, 1, SimTime(i * 20 + 5), SimTime(i * 20 + 9)));
  }
  const std::string pa = write_spill("/tmp/bpsio_map_merge_a.bpstrace", a);
  const std::string pb = write_spill("/tmp/bpsio_map_merge_b.bpstrace", b);

  trace::MergeOptions keep;
  keep.alignment = trace::TimeAlignment::keep;
  keep.pid_stride = 0;

  std::vector<std::unique_ptr<trace::RecordSource>> mapped_children;
  mapped_children.push_back(std::make_unique<trace::MappedTraceSource>(pa, 16));
  mapped_children.push_back(std::make_unique<trace::MappedTraceSource>(pb, 16));
  trace::MergedSource mapped_merge(std::move(mapped_children), keep);

  std::vector<std::unique_ptr<trace::RecordSource>> stream_children;
  stream_children.push_back(std::make_unique<trace::SpilledTraceSource>(pa, 16));
  stream_children.push_back(std::make_unique<trace::SpilledTraceSource>(pb, 16));
  trace::MergedSource stream_merge(std::move(stream_children), keep);

  EXPECT_EQ(drain(mapped_merge), drain(stream_merge));
  EXPECT_TRUE(mapped_merge.status().ok());
  EXPECT_TRUE(stream_merge.status().ok());
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

}  // namespace
}  // namespace bpsio
