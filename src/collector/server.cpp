#include "collector/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/check.hpp"
#include "common/net_util.hpp"
#include "common/poll_loop.hpp"
#include "common/wallclock.hpp"
#include "trace/merge.hpp"
#include "trace/spill_writer.hpp"

namespace bpsio::collector {
namespace {

constexpr int kPollIntervalMs = 50;
constexpr std::size_t kRecvChunk = 64 * 1024;

}  // namespace

CollectorServer::CollectorServer(CollectorOptions options)
    : options_(std::move(options)),
      shards_(options_.shards == 0 ? 1 : options_.shards, options_.window,
              options_.block_size) {}

CollectorServer::~CollectorServer() {
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->finish.store(true, std::memory_order_release);
      worker->thread.join();
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (http_fd_ >= 0) ::close(http_fd_);
}

Status CollectorServer::start() {
  if (options_.socket_path.empty()) {
    return Error{Errc::invalid_argument, "collector: socket path is required"};
  }
  spooling_ =
      !options_.drain_path.empty() || !options_.drain_tenant_dir.empty();
  if (spooling_ && options_.spool_dir.empty()) {
    return Error{Errc::invalid_argument,
                 "collector: draining requires a spool directory"};
  }
  if (spooling_) {
    std::error_code ec;
    std::filesystem::create_directories(options_.spool_dir, ec);
    if (ec) {
      return Error{Errc::io_error,
                   "collector: cannot create spool dir " + options_.spool_dir};
    }
  }
  if (options_.io_threads == 0) options_.io_threads = 1;

  listen_fd_ = net::bind_unix_listener(options_.socket_path, 128);
  if (listen_fd_ < 0) {
    return Error{Errc::io_error,
                 "collector: cannot bind/listen on " + options_.socket_path};
  }
  if (options_.tcp_port >= 0) {
    tcp_fd_ = net::bind_loopback_listener(options_.tcp_port, 128,
                                          &bound_tcp_port_);
    if (tcp_fd_ < 0) {
      return Error{Errc::io_error, "collector: cannot bind TCP ingest port " +
                                       std::to_string(options_.tcp_port)};
    }
    if (!options_.tcp_port_file.empty() &&
        !net::write_file_atomic(options_.tcp_port_file,
                                std::to_string(bound_tcp_port_) + "\n")) {
      return Error{Errc::io_error, "collector: cannot write TCP port file " +
                                       options_.tcp_port_file};
    }
  }
  if (options_.http_port >= 0) {
    http_fd_ = net::bind_loopback_listener(options_.http_port, 16,
                                           &bound_http_port_);
    if (http_fd_ < 0) {
      return Error{Errc::io_error, "collector: cannot bind HTTP port " +
                                       std::to_string(options_.http_port)};
    }
    if (!options_.port_file.empty() &&
        !net::write_file_atomic(options_.port_file,
                                std::to_string(bound_http_port_) + "\n")) {
      return Error{Errc::io_error,
                   "collector: cannot write port file " + options_.port_file};
    }
  }

  workers_.clear();
  for (std::size_t i = 0; i < options_.io_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  last_csv_ns_ = monotonic_ns();
  started_ = true;
  return {};
}

CollectorTransport CollectorServer::transport() const {
  CollectorTransport t;
  t.agents_connected_total =
      agents_connected_total_.load(std::memory_order_relaxed);
  t.agents_active = agents_active_.load(std::memory_order_relaxed);
  t.frames_total = frames_total_.load(std::memory_order_relaxed);
  t.bad_frames_total = bad_frames_total_.load(std::memory_order_relaxed);
  t.streams_total = streams_total_.load(std::memory_order_relaxed);
  return t;
}

std::string CollectorServer::spool_path(std::uint64_t conn_id,
                                        std::uint64_t stream_id) const {
  char name[64];
  std::snprintf(name, sizeof name, "c%020llu-s%020llu.bpstrace",
                static_cast<unsigned long long>(conn_id),
                static_cast<unsigned long long>(stream_id));
  std::string path = options_.spool_dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += name;
  return path;
}

void CollectorServer::accept_agents(int listener_fd) {
  for (;;) {
    const int fd =
        ::accept4(listener_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN / transient: nothing more to accept now
    const std::uint64_t id = ++conn_serial_;
    agents_connected_total_.fetch_add(1, std::memory_order_relaxed);
    agents_active_.fetch_add(1, std::memory_order_relaxed);
    Worker& worker = *workers_[id % workers_.size()];
    MutexLock lock(worker.inbox_mu);
    worker.inbox.emplace_back(fd, id);
  }
}

void CollectorServer::accept_http() {
  for (;;) {
    const int fd = ::accept4(http_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) return;
    net::serve_plain_http(fd, [this] { return metrics_body(); });
  }
}

std::string CollectorServer::metrics_body() {
  shards_.advance_windows(SimTime(monotonic_ns()));
  return shards_.prometheus_text(transport());
}

void CollectorServer::write_csv_snapshot() {
  shards_.advance_windows(SimTime(monotonic_ns()));
  if (!net::write_file_atomic(options_.csv_path, shards_.csv_snapshot())) {
    std::fprintf(stderr, "bpsio_collectord: cannot write CSV snapshot %s\n",
                 options_.csv_path.c_str());
  }
}

void CollectorServer::adopt_inbox(Worker& worker) {
  std::vector<std::pair<int, std::uint64_t>> adopted;
  {
    MutexLock lock(worker.inbox_mu);
    adopted.swap(worker.inbox);
  }
  for (const auto& [fd, id] : adopted) {
    AgentConn conn;
    conn.fd = fd;
    conn.conn_id = id;
    worker.conns.push_back(std::move(conn));
    worker.conn_fds.push_back(fd);
  }
}

bool CollectorServer::service_agent(AgentConn& conn) {
  char buf[kRecvChunk];
  bool spool_failed = false;
  // Each completed frame reaches the tenant shards and the per-stream spool
  // as one span over the recv buffer (or the decoder's scratch for split
  // frames) — no per-record copy on this path.
  const trace::FrameDecoder::TaggedFrameSink sink =
      [this, &conn, &spool_failed](std::uint64_t stream,
                                   std::span<const trace::IoRecord> frame) {
        if (conn.tenant == nullptr) {
          const std::string& announced = conn.decoder.tenant();
          conn.tenant = shards_.handle(
              announced.empty() ? std::string(kDefaultTenant) : announced);
        }
        shards_.ingest(conn.tenant, frame);
        if (!spooling_) return;
        Spool& spool = conn.spools[stream];
        if (spool.writer == nullptr) {
          spool.path = spool_path(conn.conn_id, stream);
          spool.writer = std::make_unique<trace::SpillWriter>(spool.path);
          streams_total_.fetch_add(1, std::memory_order_relaxed);
          if (!spool.writer->ok()) {
            // The drain promise is broken; keep serving live metrics for
            // everyone else but drop this connection and fail the final
            // drain loudly rather than writing an incomplete trace.
            std::fprintf(stderr,
                         "bpsio_collectord: cannot open spool %s; dropping "
                         "connection\n",
                         spool.path.c_str());
            spool_error_.store(true, std::memory_order_relaxed);
            spool_failed = true;
          }
        }
        if (spool.writer->ok()) spool.writer->append(frame);
      };
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_agent(conn, /*record_loss_ok=*/true);
      return false;
    }
    if (n == 0) {  // orderly EOF from the agent's close()
      close_agent(conn, conn.decoder.pending_bytes() == 0);
      return false;
    }
    const Status fed =
        conn.decoder.feed(buf, static_cast<std::size_t>(n), sink);
    frames_total_.fetch_add(conn.decoder.frames_decoded() - conn.frames_counted,
                            std::memory_order_relaxed);
    conn.frames_counted = conn.decoder.frames_decoded();
    if (!fed.ok()) {
      bad_frames_total_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "bpsio_collectord: dropping connection: %s\n",
                   fed.to_string().c_str());
      close_agent(conn, /*record_loss_ok=*/true);
      return false;
    }
    if (spool_failed) {
      close_agent(conn, /*record_loss_ok=*/true);
      return false;
    }
  }
  return true;
}

void CollectorServer::close_agent(AgentConn& conn, bool record_loss_ok) {
  if (!record_loss_ok) {
    // A trailing partial frame means the peer died mid-send. Those records
    // were never acknowledged as delivered, so the sender re-shipped them
    // via its spill path — the collector just notes the torn tail.
    std::fprintf(stderr,
                 "bpsio_collectord: connection closed mid-frame (%zu bytes "
                 "discarded; sender re-ships unacknowledged buffers)\n",
                 conn.decoder.pending_bytes());
  }
  const std::string tenant_name =
      conn.tenant != nullptr ? conn.tenant->name : std::string(kDefaultTenant);
  for (auto& [stream, spool] : conn.spools) {
    if (spool.writer == nullptr) continue;
    const bool was_ok = spool.writer->ok();
    const Status closed = spool.writer->close();
    if (!was_ok || !closed.ok()) {
      std::fprintf(stderr, "bpsio_collectord: spool close failed: %s\n",
                   closed.to_string().c_str());
      spool_error_.store(true, std::memory_order_relaxed);
      continue;
    }
    MutexLock lock(spool_mu_);
    closed_spools_.push_back(SpoolRecord{spool.path, tenant_name});
  }
  conn.spools.clear();
  ::close(conn.fd);
  conn.fd = -1;
  agents_active_.fetch_sub(1, std::memory_order_relaxed);
}

void CollectorServer::run_worker(Worker& worker) {
  PollLoop loop;
  for (;;) {
    // Adopt after reading the flag: connections enqueued before finish was
    // raised still get a final service pass below.
    const bool finishing = worker.finish.load(std::memory_order_acquire);
    adopt_inbox(worker);
    if (finishing) break;
    const Status polled =
        loop.round(worker.conn_fds, kPollIntervalMs, [&](std::size_t i) {
          if (!service_agent(worker.conns[i])) {
            worker.conns.erase(worker.conns.begin() +
                               static_cast<std::ptrdiff_t>(i));
            worker.conn_fds.erase(worker.conn_fds.begin() +
                                  static_cast<std::ptrdiff_t>(i));
            return false;
          }
          return true;
        });
    if (!polled.ok()) {
      std::fprintf(stderr, "bpsio_collectord: worker poll failed: %s\n",
                   polled.to_string().c_str());
      break;
    }
  }
  // Shutdown: drain what already arrived on every connection, then close.
  for (AgentConn& conn : worker.conns) {
    if (conn.fd < 0) continue;
    if (!service_agent(conn)) continue;  // closed itself (EOF/error)
    close_agent(conn, conn.decoder.pending_bytes() == 0);
  }
  worker.conns.clear();
  worker.conn_fds.clear();
}

Status CollectorServer::run() {
  BPSIO_CHECK(started_, "CollectorServer::run() before start()");
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { run_worker(*w); });
  }

  PollLoop loop;
  loop.add_listener(listen_fd_, [this] { accept_agents(listen_fd_); });
  if (tcp_fd_ >= 0) {
    loop.add_listener(tcp_fd_, [this] { accept_agents(tcp_fd_); });
  }
  if (http_fd_ >= 0) loop.add_listener(http_fd_, [this] { accept_http(); });

  Status failure;
  for (;;) {
    if (options_.stop != nullptr &&
        options_.stop->load(std::memory_order_relaxed)) {
      break;
    }
    if (options_.expect_agents > 0 &&
        agents_connected_total_.load(std::memory_order_relaxed) >=
            options_.expect_agents &&
        agents_active_.load(std::memory_order_relaxed) == 0) {
      break;
    }
    const Status polled = loop.round({}, kPollIntervalMs,
                                     [](std::size_t) { return true; });
    if (!polled.ok()) {
      failure = polled;
      break;
    }
    if (!options_.csv_path.empty()) {
      const std::int64_t now = monotonic_ns();
      if (now - last_csv_ns_ >= options_.csv_interval.ns()) {
        write_csv_snapshot();
        last_csv_ns_ = now;
      }
    }
  }

  // Shutdown: stop accepting, then let every worker run its final service
  // pass and close its connections before joining.
  ::close(listen_fd_);
  ::unlink(options_.socket_path.c_str());
  listen_fd_ = -1;
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  for (auto& worker : workers_) {
    worker->finish.store(true, std::memory_order_release);
  }
  for (auto& worker : workers_) worker->thread.join();
  // Close any accepted-but-never-adopted fds (raced with shutdown).
  for (auto& worker : workers_) {
    MutexLock lock(worker->inbox_mu);
    for (const auto& [fd, id] : worker->inbox) {
      ::close(fd);
      agents_active_.fetch_sub(1, std::memory_order_relaxed);
    }
    worker->inbox.clear();
  }
  if (!options_.csv_path.empty()) write_csv_snapshot();

  if (!failure.ok()) return failure;
  if (spool_error_.load(std::memory_order_relaxed)) {
    return Error{Errc::io_error,
                 "collector: spool failure during the run; refusing to write "
                 "an incomplete drain"};
  }
  if (spooling_) return drain();
  return {};
}

Status CollectorServer::drain() {
  // Workers are joined; closed_spools_ is complete. Each spool is one
  // (connection, origin stream)'s start-ordered records, so the k-way merge
  // needs no sort — the same contract as bpsio_agentd's drain and the
  // spill-file pipeline.
  std::vector<SpoolRecord> spools;
  {
    MutexLock lock(spool_mu_);
    spools.swap(closed_spools_);
  }
  std::sort(spools.begin(), spools.end(),
            [](const SpoolRecord& a, const SpoolRecord& b) {
              return a.path < b.path;
            });

  if (!options_.drain_path.empty()) {
    std::vector<std::string> paths;
    paths.reserve(spools.size());
    for (const SpoolRecord& s : spools) paths.push_back(s.path);
    if (const Status merged =
            trace::merge_trace_files(std::move(paths), options_.drain_path);
        !merged.ok()) {
      return Error{Errc::io_error,
                   "collector: drain failed: " + merged.to_string()};
    }
  }
  if (!options_.drain_tenant_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.drain_tenant_dir, ec);
    if (ec) {
      return Error{Errc::io_error, "collector: cannot create drain dir " +
                                       options_.drain_tenant_dir};
    }
    std::map<std::string, std::vector<std::string>> by_tenant;
    for (const SpoolRecord& s : spools) by_tenant[s.tenant].push_back(s.path);
    for (auto& [tenant, paths] : by_tenant) {
      std::string out = options_.drain_tenant_dir;
      if (!out.empty() && out.back() != '/') out += '/';
      out += "tenant-" + tenant + ".bpstrace";
      if (const Status merged = trace::merge_trace_files(paths, out);
          !merged.ok()) {
        return Error{Errc::io_error, "collector: tenant drain failed for " +
                                         tenant + ": " + merged.to_string()};
      }
    }
  }
  for (const SpoolRecord& s : spools) {
    std::error_code ec;
    std::filesystem::remove(s.path, ec);
  }
  std::error_code ec;
  std::filesystem::remove(options_.spool_dir, ec);  // only when now empty
  return {};
}

}  // namespace bpsio::collector
