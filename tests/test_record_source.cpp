#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "trace/merge.hpp"
#include "trace/record_source.hpp"
#include "trace/serialize.hpp"
#include "trace/spill_writer.hpp"
#include "trace/trace_collector.hpp"

namespace bpsio {
namespace {

using trace::IoRecord;
using trace::make_record;

std::vector<IoRecord> drain(trace::RecordSource& source) {
  std::vector<IoRecord> all;
  for (auto chunk = source.next_chunk(); !chunk.empty();
       chunk = source.next_chunk()) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  return all;
}

// A small overlapping workload with duplicate (start, end) keys, multiple
// pids, and a zero-length access.
std::vector<IoRecord> sample_trace() {
  std::vector<IoRecord> t;
  t.push_back(make_record(1, 4, SimTime(0), SimTime(100)));
  t.push_back(make_record(2, 2, SimTime(50), SimTime(150)));
  t.push_back(make_record(1, 1, SimTime(50), SimTime(150)));  // duplicate key
  t.push_back(make_record(3, 8, SimTime(120), SimTime(120)));  // zero-length
  t.push_back(make_record(2, 3, SimTime(200), SimTime(260)));
  return t;
}

TEST(VectorSource, ViewChunksWithoutCopying) {
  const auto records = sample_trace();
  auto source = trace::VectorSource::view(records, /*chunk_records=*/2);
  ASSERT_TRUE(source.size_hint().has_value());
  EXPECT_EQ(*source.size_hint(), records.size());

  auto first = source.next_chunk();
  ASSERT_EQ(first.size(), 2u);
  // Zero-copy: the chunk aliases the caller's storage.
  EXPECT_EQ(first.data(), records.data());

  std::vector<IoRecord> all(first.begin(), first.end());
  for (auto chunk = source.next_chunk(); !chunk.empty();
       chunk = source.next_chunk()) {
    EXPECT_LE(chunk.size(), 2u);
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(all, records);
  // Exhausted sources stay exhausted.
  EXPECT_TRUE(source.next_chunk().empty());
  EXPECT_TRUE(source.status().ok());
}

TEST(VectorSource, SortedOrdersByStartThenEnd) {
  std::vector<IoRecord> shuffled;
  shuffled.push_back(make_record(1, 1, SimTime(200), SimTime(210)));
  shuffled.push_back(make_record(1, 1, SimTime(0), SimTime(300)));
  shuffled.push_back(make_record(1, 1, SimTime(0), SimTime(100)));
  auto source = trace::VectorSource::sorted(shuffled, /*chunk_records=*/10);
  const auto all = drain(source);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].end_ns, 100);
  EXPECT_EQ(all[1].end_ns, 300);
  EXPECT_EQ(all[2].start_ns, 200);
}

TEST(VectorSource, EmptySourceYieldsNothing) {
  auto source = trace::VectorSource::sorted({});
  EXPECT_TRUE(source.next_chunk().empty());
  ASSERT_TRUE(source.size_hint().has_value());
  EXPECT_EQ(*source.size_hint(), 0u);
}

TEST(CollectorSource, FiltersAndSorts) {
  trace::TraceCollector c;
  c.add(make_record(2, 2, SimTime(500), SimTime(600)));
  c.add(make_record(1, 1, SimTime(0), SimTime(100)));
  c.add(make_record(2, 4, SimTime(100), SimTime(200)));
  trace::RecordFilter f;
  f.pid = 2;
  auto source = trace::collector_source(c, f);
  const auto all = drain(source);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].start_ns, 100);
  EXPECT_EQ(all[1].start_ns, 500);
}

TEST(CollectorSource, ViewPreservesGatherOrder) {
  trace::TraceCollector c;
  c.add(make_record(1, 1, SimTime(500), SimTime(600)));
  c.add(make_record(1, 1, SimTime(0), SimTime(100)));
  auto source = trace::collector_view(c);
  const auto all = drain(source);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].start_ns, 500);  // unsorted: gather order
}

// ---------------------------------------------------------------------------
// SpilledTraceSource
// ---------------------------------------------------------------------------

std::vector<IoRecord> ordered_records(std::size_t n) {
  std::vector<IoRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = static_cast<std::int64_t>(i) * 10;
    records.push_back(make_record(static_cast<std::uint32_t>(i % 5), i % 7 + 1,
                                  SimTime(s), SimTime(s + 25)));
  }
  return records;
}

std::string write_spill(const std::string& path,
                        const std::vector<IoRecord>& records) {
  trace::SpillWriter writer(path, /*batch_records=*/16);
  for (const auto& r : records) writer.append(r);
  EXPECT_TRUE(writer.close().ok());
  return path;
}

TEST(SpilledTraceSource, StreamsExactlyTheFileContents) {
  const auto records = ordered_records(100);
  const std::string path =
      write_spill("/tmp/bpsio_src_stream.bpstrace", records);
  trace::SpilledTraceSource source(path, /*chunk_records=*/7);
  ASSERT_TRUE(source.status().ok());
  EXPECT_EQ(source.record_count(), 100u);
  ASSERT_TRUE(source.size_hint().has_value());
  EXPECT_EQ(*source.size_hint(), 100u);
  EXPECT_EQ(drain(source), records);
  EXPECT_TRUE(source.status().ok());
  std::remove(path.c_str());
}

TEST(SpilledTraceSource, ChunkBoundaryCounts) {
  // Record counts at chunk-1 / chunk / chunk+1 / 2*chunk stream exactly.
  constexpr std::size_t kChunk = 8;
  for (const std::size_t n : {kChunk - 1, kChunk, kChunk + 1, 2 * kChunk}) {
    const auto records = ordered_records(n);
    const std::string path = write_spill(
        "/tmp/bpsio_src_boundary_" + std::to_string(n) + ".bpstrace", records);
    trace::SpilledTraceSource source(path, kChunk);
    EXPECT_EQ(drain(source), records) << "n=" << n;
    EXPECT_TRUE(source.status().ok()) << "n=" << n;
    std::remove(path.c_str());
  }
}

TEST(SpilledTraceSource, MissingFileFailsUpFront) {
  trace::SpilledTraceSource source("/tmp/bpsio_no_such_trace.bpstrace");
  EXPECT_FALSE(source.status().ok());
  EXPECT_TRUE(source.next_chunk().empty());
  EXPECT_FALSE(source.size_hint().has_value());
}

TEST(SpilledTraceSource, TruncatedFileSurfacesTheLoaderError) {
  const auto records = ordered_records(40);
  const std::string path =
      write_spill("/tmp/bpsio_src_trunc.bpstrace", records);
  // Chop the last 1.5 records off the file.
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto full = static_cast<std::size_t>(in.tellg());
    std::vector<char> bytes(full - sizeof(IoRecord) - sizeof(IoRecord) / 2);
    in.seekg(0);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  trace::SpilledTraceSource source(path, /*chunk_records=*/16);
  ASSERT_TRUE(source.status().ok());  // header still intact
  while (!source.next_chunk().empty()) {
  }
  EXPECT_FALSE(source.status().ok());
  EXPECT_NE(source.status().error().message.find("trace truncated"),
            std::string::npos)
      << source.status().error().message;
  // The streamed error matches the whole-file loader's verdict.
  const auto loaded = trace::load_binary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().message, source.status().error().message);
  std::remove(path.c_str());
}

TEST(SpillWriter, IntoSourceRoundTrips) {
  const std::string path = "/tmp/bpsio_into_source.bpstrace";
  const auto records = ordered_records(50);
  trace::SpillWriter writer(path, /*batch_records=*/8);
  for (const auto& r : records) writer.append(r);
  auto source = writer.into_source(/*chunk_records=*/9);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source->record_count(), 50u);
  EXPECT_EQ(drain(*source), records);
  std::remove(path.c_str());
}

TEST(SpillWriter, IntoSourcePropagatesWriteFailure) {
  trace::SpillWriter writer("/nonexistent-dir/x.bpstrace");
  writer.append(make_record(1, 1, SimTime(0), SimTime(1)));
  const auto source = writer.into_source();
  EXPECT_FALSE(source.ok());
}

// ---------------------------------------------------------------------------
// MergedSource
// ---------------------------------------------------------------------------

std::vector<std::vector<IoRecord>> three_traces() {
  std::vector<std::vector<IoRecord>> traces(3);
  // Unsorted inputs with cross-trace ties on (start, end).
  traces[0].push_back(make_record(7, 1, SimTime(300), SimTime(400)));
  traces[0].push_back(make_record(7, 2, SimTime(0), SimTime(100)));
  traces[1].push_back(make_record(7, 3, SimTime(0), SimTime(100)));  // tie
  traces[1].push_back(make_record(8, 4, SimTime(150), SimTime(250)));
  traces[2].push_back(make_record(9, 5, SimTime(50), SimTime(60)));
  traces[2].push_back(make_record(9, 6, SimTime(300), SimTime(400)));  // tie
  return traces;
}

void expect_same_sequence(const trace::MergeOptions& options) {
  const auto traces = three_traces();
  ThreadPool pool(2);
  const auto batch = trace::merge_traces_parallel(traces, pool, options);
  auto source = trace::merged_record_source(traces, options);
  ASSERT_NE(source, nullptr);
  std::vector<IoRecord> streamed;
  for (auto chunk = source->next_chunk(); !chunk.empty();
       chunk = source->next_chunk()) {
    EXPECT_LE(chunk.size(), trace::kDefaultSourceChunk);
    streamed.insert(streamed.end(), chunk.begin(), chunk.end());
  }
  EXPECT_TRUE(source->status().ok());
  ASSERT_TRUE(source->size_hint().has_value());
  EXPECT_EQ(*source->size_hint(), batch.size());
  EXPECT_EQ(streamed, batch);
}

TEST(MergedSource, MatchesBatchMergeRecordForRecord) {
  expect_same_sequence(trace::MergeOptions{});
}

TEST(MergedSource, MatchesBatchMergeWithAlignedStarts) {
  trace::MergeOptions options;
  options.alignment = trace::TimeAlignment::align_starts;
  expect_same_sequence(options);
}

TEST(MergedSource, MatchesBatchMergeWithoutPidRemap) {
  trace::MergeOptions options;
  options.pid_stride = 0;
  expect_same_sequence(options);
}

TEST(MergedSource, SmallChunksPreserveTheSequence) {
  const auto traces = three_traces();
  ThreadPool pool(2);
  const auto batch =
      trace::merge_traces_parallel(traces, pool, trace::MergeOptions{});
  std::vector<std::unique_ptr<trace::RecordSource>> children;
  for (const auto& t : traces) {
    children.push_back(std::make_unique<trace::VectorSource>(
        trace::VectorSource::sorted(t, /*chunk_records=*/1)));
  }
  trace::MergedSource source(std::move(children), trace::MergeOptions{},
                             /*chunk_records=*/2);
  EXPECT_EQ(drain(source), batch);
}

TEST(MergedSource, NoChildrenIsEmpty) {
  trace::MergedSource source({});
  EXPECT_TRUE(source.next_chunk().empty());
  EXPECT_TRUE(source.status().ok());
}

TEST(MergedSource, ChildFailureTruncatesAndReports) {
  std::vector<std::unique_ptr<trace::RecordSource>> children;
  children.push_back(std::make_unique<trace::SpilledTraceSource>(
      "/tmp/bpsio_no_such_child.bpstrace"));
  trace::MergedSource source(std::move(children));
  EXPECT_TRUE(source.next_chunk().empty());
  EXPECT_FALSE(source.status().ok());
}

// ---------------------------------------------------------------------------
// FilteredSource (RecordFilter on streams)
// ---------------------------------------------------------------------------

TEST(FilteredSource, FilterThenMergeEqualsMergeThenFilter) {
  const auto traces = three_traces();
  trace::MergeOptions options;
  options.pid_stride = 0;  // keep pids stable so the filter sees them
  trace::RecordFilter f;
  f.pid = 7;

  // Merge, then filter the merged stream.
  auto merged = trace::merged_record_source(traces, options);
  trace::FilteredSource merge_then_filter(*merged, f);
  const auto a = drain(merge_then_filter);

  // Filter each child, then merge the filtered streams.
  std::vector<std::unique_ptr<trace::RecordSource>> children;
  for (const auto& t : traces) {
    std::vector<IoRecord> kept;
    for (const auto& r : t) {
      if (f.matches(r)) kept.push_back(r);
    }
    children.push_back(std::make_unique<trace::VectorSource>(
        trace::VectorSource::sorted(std::move(kept))));
  }
  trace::MergedSource filter_then_merge(std::move(children), options);
  const auto b = drain(filter_then_merge);

  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  for (const auto& r : a) EXPECT_EQ(r.pid, 7u);
}

TEST(FilteredSource, EmptyInnerSourceYieldsNothing) {
  auto inner = trace::VectorSource::sorted({});
  trace::FilteredSource source(inner, trace::RecordFilter{});
  EXPECT_TRUE(source.next_chunk().empty());
}

TEST(FilteredSource, SingleRecordPassesOrDrops) {
  std::vector<IoRecord> one{make_record(5, 2, SimTime(10), SimTime(20))};
  {
    auto inner = trace::VectorSource::view(one);
    trace::RecordFilter f;
    f.pid = 5;
    trace::FilteredSource source(inner, f);
    const auto all = drain(source);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].blocks, 2u);
  }
  {
    auto inner = trace::VectorSource::view(one);
    trace::RecordFilter f;
    f.pid = 6;
    trace::FilteredSource source(inner, f);
    EXPECT_TRUE(source.next_chunk().empty());
  }
}

TEST(FilteredSource, WindowFilterAcrossSpilledChunkBoundaries) {
  // A window that selects records straddling several small spill chunks:
  // the filtered stream must equal the filtered whole-file load.
  const auto records = ordered_records(64);
  const std::string path =
      write_spill("/tmp/bpsio_src_winfilter.bpstrace", records);
  trace::RecordFilter f;
  f.window_start_ns = 95;   // drops records ending before 95
  f.window_end_ns = 400;    // drops records starting at/after 400
  std::vector<IoRecord> expected;
  for (const auto& r : records) {
    if (f.matches(r)) expected.push_back(r);
  }
  ASSERT_FALSE(expected.empty());
  ASSERT_LT(expected.size(), records.size());

  trace::SpilledTraceSource spilled(path, /*chunk_records=*/5);
  trace::FilteredSource source(spilled, f);
  const auto streamed = drain(source);
  EXPECT_EQ(streamed, expected);
  EXPECT_TRUE(source.status().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bpsio
