// Shared poll()-round bookkeeping for the socket daemons (bpsio_agentd's
// AgentServer, bpsio_collectord's I/O workers).
//
// Both daemons run the same loop shape: a few listener fds whose readiness
// means "accept / answer now", plus a growing-and-shrinking set of
// connection fds serviced by index. The fiddly part — and the part that has
// already bitten once — is that servicing mutates the fd set mid-round:
//
//  * a listener callback may ACCEPT new connections, so the revents scan
//    must be bounded by the snapshot taken when poll() was armed, never by
//    the live connection count (the PR-5 out-of-bounds regression);
//  * a connection callback may CLOSE-AND-REMOVE its connection, shifting
//    every later index, so the scan must stop there and rediscover the
//    remaining readiness on the next round instead of reusing stale revents.
//
// PollLoop owns exactly that bookkeeping and nothing else: callers keep
// their own per-connection state in a parallel vector and stay in charge of
// accept(), recv(), and close().
#pragma once

#include <poll.h>

#include <functional>
#include <span>
#include <vector>

#include "common/result.hpp"

namespace bpsio {

class PollLoop {
 public:
  /// Register a listener; `on_ready` runs whenever `fd` polls readable.
  /// The callback may grow the caller's connection set — only the snapshot
  /// passed to the round() that armed the poll is scanned this round.
  void add_listener(int fd, std::function<void()> on_ready);

  /// One poll() round over the listeners plus `conn_fds` (the caller's
  /// connection fds, index-aligned with its own state). Ready listeners run
  /// first; then `on_conn(i)` services each ready connection.
  ///
  /// `on_conn(i)` returns false when it closed and removed connection `i`
  /// from the caller's set: indices have shifted, so the scan stops and the
  /// next round re-polls whatever readiness remains. Returning true means
  /// the connection (and the index space) survived.
  ///
  /// EINTR is not an error; a hard poll() failure is.
  Status round(std::span<const int> conn_fds, int timeout_ms,
               const std::function<bool(std::size_t)>& on_conn);

 private:
  struct Listener {
    int fd;
    std::function<void()> on_ready;
  };

  std::vector<Listener> listeners_;
  std::vector<pollfd> fds_;  ///< scratch, reused across rounds
};

}  // namespace bpsio
