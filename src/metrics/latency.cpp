#include "metrics/latency.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/check.hpp"
#include "metrics/pipeline.hpp"
#include "stats/descriptive.hpp"
#include "trace/record_source.hpp"

namespace bpsio::metrics {

LatencySummary latency_summary(const trace::TraceCollector& collector,
                               const trace::RecordFilter& filter) {
  // Latency statistics are order-independent (percentile() sorts its copy),
  // so stream the collector's gather order. The response times themselves
  // must be materialized — exact percentiles need every sample — which is
  // the documented escape hatch, not a whole-record copy.
  std::vector<double> rts;
  double sum = 0;
  ForEachConsumer gather([&](const trace::IoRecord& r) {
    const double rt = r.response_time().seconds();
    rts.push_back(rt);
    sum += rt;
  });
  FilteredConsumer filtered(filter, gather);
  auto source = trace::collector_view(collector);
  MetricPipeline pipeline;
  pipeline.attach(filtered).check_order(false);
  const Status run = pipeline.run(source);
  BPSIO_CHECK(run.ok(), "latency pipeline failed: %s",
              run.error().message.c_str());
  LatencySummary s;
  s.count = rts.size();
  if (rts.empty()) return s;
  s.mean_s = sum / static_cast<double>(rts.size());
  s.max_s = *std::max_element(rts.begin(), rts.end());
  s.p50_s = stats::percentile(rts, 50);
  s.p95_s = stats::percentile(rts, 95);
  s.p99_s = stats::percentile(rts, 99);
  return s;
}

std::string LatencySummary::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms "
                "max=%.3fms",
                count, mean_s * 1e3, p50_s * 1e3, p95_s * 1e3, p99_s * 1e3,
                max_s * 1e3);
  return buf;
}

stats::LogHistogram latency_histogram(const trace::TraceCollector& collector,
                                      const trace::RecordFilter& filter) {
  stats::LogHistogram hist(1e-6, 100.0, 2.0);
  HistogramConsumer add(hist);
  FilteredConsumer filtered(filter, add);
  auto source = trace::collector_view(collector);
  MetricPipeline pipeline;
  pipeline.attach(filtered).check_order(false);
  const Status run = pipeline.run(source);
  BPSIO_CHECK(run.ok(), "histogram pipeline failed: %s",
              run.error().message.c_str());
  return hist;
}

}  // namespace bpsio::metrics
