// Markdown report generation for experiment sweeps — render a SweepResult
// the way EXPERIMENTS.md presents the paper's figures.
#pragma once

#include <string>

#include "core/experiment.hpp"

namespace bpsio::core {

struct ReportOptions {
  std::string title;
  /// One-line statement of what the paper expects for this sweep.
  std::string paper_expectation;
  bool include_samples = true;
  bool include_confidence = true;
};

/// Render the sweep as a self-contained markdown section: heading, the
/// per-point sample table, and the normalized-CC table with verdicts.
std::string to_markdown(const SweepResult& sweep, const ReportOptions& options);

}  // namespace bpsio::core
