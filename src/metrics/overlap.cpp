#include "metrics/overlap.hpp"

#include <algorithm>

namespace bpsio::metrics {

namespace {

void sort_by_start(std::vector<TimeInterval>& v) {
  std::sort(v.begin(), v.end(), [](const TimeInterval& a, const TimeInterval& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.end_ns < b.end_ns;
  });
}

}  // namespace

SimDuration overlap_time_paper(std::vector<TimeInterval> col_time) {
  if (col_time.empty()) return SimDuration::zero();

  // "sort all records in col_time according to the start time of each record"
  sort_by_start(col_time);

  // Figure 3, transcribed. tempRecord carries the growing merged interval;
  // when the next record is disjoint, the finished interval's length is
  // accumulated into T (the pseudocode writes "T = ..." for both
  // accumulation sites, but the worked example in Figure 2 — T = dt1 + dt2 —
  // makes clear the intent is accumulation).
  std::int64_t T = 0;
  TimeInterval tempRecord = col_time.front();
  for (std::size_t i = 1; i < col_time.size(); ++i) {
    TimeInterval nextRecord = col_time[i];
    if (tempRecord.end_ns < nextRecord.start_ns) {
      T += tempRecord.end_ns - tempRecord.start_ns;
    } else {
      nextRecord.start_ns = tempRecord.start_ns;
      if (nextRecord.end_ns < tempRecord.end_ns) {
        nextRecord.end_ns = tempRecord.end_ns;
      }
    }
    tempRecord = nextRecord;
  }
  T += tempRecord.end_ns - tempRecord.start_ns;
  return SimDuration(T);
}

std::vector<TimeInterval> merge_intervals(std::vector<TimeInterval> col_time) {
  std::vector<TimeInterval> merged;
  if (col_time.empty()) return merged;
  sort_by_start(col_time);
  merged.push_back(col_time.front());
  for (std::size_t i = 1; i < col_time.size(); ++i) {
    const TimeInterval& next = col_time[i];
    TimeInterval& cur = merged.back();
    if (next.start_ns <= cur.end_ns) {
      cur.end_ns = std::max(cur.end_ns, next.end_ns);
    } else {
      merged.push_back(next);
    }
  }
  return merged;
}

SimDuration overlap_time_merged(std::vector<TimeInterval> col_time) {
  std::int64_t T = 0;
  for (const auto& iv : merge_intervals(std::move(col_time))) {
    T += iv.end_ns - iv.start_ns;
  }
  return SimDuration(T);
}

SimDuration overlap_time_bruteforce(const std::vector<TimeInterval>& col_time) {
  // For interval i, count only the portion of [start_i, end_i) not covered
  // by any interval j < i. Subtract overlaps segment by segment.
  std::int64_t T = 0;
  for (std::size_t i = 0; i < col_time.size(); ++i) {
    // Collect the parts of interval i already covered by earlier intervals.
    std::vector<TimeInterval> uncovered{col_time[i]};
    if (uncovered.back().end_ns <= uncovered.back().start_ns) continue;
    for (std::size_t j = 0; j < i && !uncovered.empty(); ++j) {
      std::vector<TimeInterval> next;
      for (const auto& seg : uncovered) {
        const std::int64_t s = std::max(seg.start_ns, col_time[j].start_ns);
        const std::int64_t e = std::min(seg.end_ns, col_time[j].end_ns);
        if (s >= e) {
          next.push_back(seg);  // no overlap with j
          continue;
        }
        if (seg.start_ns < s) next.push_back({seg.start_ns, s});
        if (e < seg.end_ns) next.push_back({e, seg.end_ns});
      }
      uncovered = std::move(next);
    }
    for (const auto& seg : uncovered) T += seg.end_ns - seg.start_ns;
  }
  return SimDuration(T);
}

SimDuration overlap_time_windowed(const std::vector<TimeInterval>& col_time,
                                  std::int64_t window_start_ns,
                                  std::int64_t window_end_ns) {
  std::vector<TimeInterval> clipped;
  clipped.reserve(col_time.size());
  for (const auto& iv : col_time) {
    const std::int64_t s = std::max(iv.start_ns, window_start_ns);
    const std::int64_t e = std::min(iv.end_ns, window_end_ns);
    if (s < e) clipped.push_back({s, e});
  }
  return overlap_time_merged(std::move(clipped));
}

SimDuration idle_time(const std::vector<TimeInterval>& col_time) {
  if (col_time.empty()) return SimDuration::zero();
  std::int64_t lo = col_time.front().start_ns;
  std::int64_t hi = col_time.front().end_ns;
  for (const auto& iv : col_time) {
    lo = std::min(lo, iv.start_ns);
    hi = std::max(hi, iv.end_ns);
  }
  return SimDuration(hi - lo) - overlap_time_merged(col_time);
}

std::size_t peak_concurrency(const std::vector<TimeInterval>& col_time) {
  // Sweep over sorted boundary events. Zero-length intervals contribute no
  // measure, so end events at time t are processed before start events at t.
  std::vector<std::pair<std::int64_t, int>> events;
  events.reserve(col_time.size() * 2);
  for (const auto& iv : col_time) {
    if (iv.end_ns <= iv.start_ns) continue;
    events.emplace_back(iv.start_ns, +1);
    events.emplace_back(iv.end_ns, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // -1 before +1 at the same time
            });
  std::size_t active = 0, peak = 0;
  for (const auto& [t, delta] : events) {
    (void)t;
    if (delta > 0) {
      ++active;
      peak = std::max(peak, active);
    } else {
      --active;
    }
  }
  return peak;
}

double average_concurrency(const std::vector<TimeInterval>& col_time) {
  std::int64_t total = 0;
  for (const auto& iv : col_time) {
    if (iv.end_ns > iv.start_ns) total += iv.end_ns - iv.start_ns;
  }
  const auto uni = overlap_time_merged(col_time);
  if (uni.ns() <= 0) return 0.0;
  return static_cast<double>(total) / static_cast<double>(uni.ns());
}

}  // namespace bpsio::metrics
